package ctrl

import (
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/invariant"
	"lightpath/internal/unit"
)

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Audit = invariant.Paranoid
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(invariant.ResetGlobal)
	return s
}

// submit is the test shorthand: request at a given arrival, status out.
func submit(s *Server, req Request, at unit.Seconds) Response {
	resp, _ := s.Submit(req, at)
	return resp
}

func TestServerEstablishReleaseReroute(t *testing.T) {
	s := newTestServer(t, nil)
	est := submit(s, Request{ID: 1, Op: OpEstablish, A: 0, B: 9, Width: 2}, 0)
	if est.Status != StatusOK || est.Width != 2 || est.Degraded {
		t.Fatalf("establish: %+v", est)
	}
	if got := s.Allocator().NumCircuits(); got != 1 {
		t.Fatalf("allocator holds %d circuits, want 1", got)
	}

	rr := submit(s, Request{ID: 2, Op: OpReroute, Circuit: est.Circuit}, 10*unit.Microsecond)
	if rr.Status != StatusOK || rr.Width != 2 {
		t.Fatalf("reroute: %+v", rr)
	}

	rel := submit(s, Request{ID: 3, Op: OpRelease, Circuit: rr.Circuit}, 20*unit.Microsecond)
	if rel.Status != StatusOK {
		t.Fatalf("release: %+v", rel)
	}
	if got := s.Allocator().NumCircuits(); got != 0 {
		t.Fatalf("allocator holds %d circuits after release, want 0", got)
	}
	if aud := s.Auditor(); aud.Count() != 0 {
		t.Fatalf("%d invariant violations: %v", aud.Count(), aud.Err())
	}
}

func TestServerValidation(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name string
		req  Request
		want Status
	}{
		{"zero width", Request{Op: OpEstablish, A: 0, B: 1}, StatusBadRequest},
		{"same chip", Request{Op: OpEstablish, A: 4, B: 4, Width: 1}, StatusBadRequest},
		{"chip out of range", Request{Op: OpEstablish, A: 0, B: 1 << 20, Width: 1}, StatusBadRequest},
		{"negative chip", Request{Op: OpEstablish, A: -1, B: 3, Width: 1}, StatusBadRequest},
		{"unknown op", Request{Op: numOps + 1}, StatusBadRequest},
		{"unknown circuit release", Request{Op: OpRelease, Circuit: 404}, StatusUnknownCircuit},
		{"unknown circuit reroute", Request{Op: OpReroute, Circuit: 404}, StatusUnknownCircuit},
	}
	for _, tc := range cases {
		if resp := submit(s, tc.req, 0); resp.Status != tc.want {
			t.Errorf("%s: status %v, want %v", tc.name, resp.Status, tc.want)
		}
	}
	if st := s.Stats(); st.BadRequest != 5 || st.UnknownCircuit != 2 {
		t.Fatalf("stats %+v: want 5 bad requests, 2 unknown circuits", st)
	}
}

// TestServerAdmissionControl pins the backpressure contract: on one
// virtual instant the queue admits exactly QueueCap establishes, sheds
// the rest with StatusOverloaded — and still admits releases, because
// shedding the work that frees capacity would leak it.
func TestServerAdmissionControl(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.QueueCap = 4 })
	held := submit(s, Request{Op: OpEstablish, A: 50, B: 60, Width: 1}, 0)
	if held.Status != StatusOK {
		t.Fatalf("setup establish: %+v", held)
	}
	var ok, shed int
	for i := 0; i < 10; i++ {
		resp := submit(s, Request{Op: OpEstablish, A: i, B: i + 10, Width: 1}, 0)
		switch resp.Status {
		case StatusOK:
			ok++
		case StatusOverloaded:
			shed++
		default:
			t.Fatalf("burst response: %+v", resp)
		}
	}
	if ok != 3 || shed != 7 {
		t.Fatalf("admitted %d shed %d with cap 4 (one slot pre-held), want 3/7", ok, shed)
	}
	if resp := submit(s, Request{Op: OpRelease, Circuit: held.Circuit}, 0); resp.Status != StatusOK {
		t.Fatalf("release during overload was not exempt: %+v", resp)
	}
	// The freed capacity must actually drain: after the backlog clears,
	// establishes are admitted again.
	later := s.Clock() + 100*unit.Microsecond
	if resp := submit(s, Request{Op: OpEstablish, A: 30, B: 41, Width: 1}, later); resp.Status != StatusOK {
		t.Fatalf("establish after drain: %+v", resp)
	}
}

// TestServerDeadline pins deadline semantics: the miss is computed
// from queueing delay plus service time, rejected work consumes no
// capacity, and a zero deadline means none.
func TestServerDeadline(t *testing.T) {
	s := newTestServer(t, nil)
	// Empty queue: sojourn equals the establish service time.
	if resp := submit(s, Request{Op: OpEstablish, A: 0, B: 9, Width: 1, Deadline: unit.Microsecond}, 0); resp.Status != StatusDeadline {
		t.Fatalf("sub-service deadline: %+v", resp)
	}
	if depth := s.QueueDepth(); depth != 0 {
		t.Fatalf("deadline miss consumed queue capacity: depth %d", depth)
	}
	if resp := submit(s, Request{Op: OpEstablish, A: 0, B: 9, Width: 1, Deadline: 0}, 0); resp.Status != StatusOK {
		t.Fatalf("zero deadline (none): %+v", resp)
	}
	// Queue three more establishes on the same instant, then demand a
	// budget the backlog cannot meet but an empty queue could.
	for i := 0; i < 3; i++ {
		submit(s, Request{Op: OpEstablish, A: 10 + i, B: 30 + i, Width: 1}, 0)
	}
	cfg := s.Config()
	budget := cfg.EstablishService * 2 // four queued services ahead of it
	if resp := submit(s, Request{Op: OpEstablish, A: 20, B: 45, Width: 1, Deadline: budget}, 0); resp.Status != StatusDeadline {
		t.Fatalf("queue-induced deadline: %+v", resp)
	}
	if st := s.Stats(); st.DeadlineMiss != 2 {
		t.Fatalf("deadline misses %d, want 2", st.DeadlineMiss)
	}
}

// TestServerBreakerFencesDeadChip kills a chip and checks the
// degradation ladder's last rung before shedding: clean endpoint
// failures until the chip's breaker trips, then fast ErrBreakerOpen
// rejections that never reach the allocator, then — after cooldown — a
// half-open probe.
func TestServerBreakerFencesDeadChip(t *testing.T) {
	s := newTestServer(t, nil)
	cfg := s.Config()
	if _, err := s.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: 12}, 0); err != nil {
		t.Fatal(err)
	}
	var endpoint, fast int
	at := unit.Seconds(0)
	for i := 0; i < 3*cfg.Breaker.FailThreshold; i++ {
		at += 100 * unit.Nanosecond
		switch resp := submit(s, Request{Op: OpEstablish, A: 12, B: 30, Width: 1}, at); resp.Status {
		case StatusEndpointFailed:
			endpoint++
		case StatusBreakerOpen:
			fast++
		default:
			t.Fatalf("dead-chip establish %d: %+v", i, resp)
		}
	}
	if endpoint != cfg.Breaker.FailThreshold || fast != 2*cfg.Breaker.FailThreshold {
		t.Fatalf("endpoint %d fast %d, want %d and %d",
			endpoint, fast, cfg.Breaker.FailThreshold, 2*cfg.Breaker.FailThreshold)
	}
	// Healthy chips are unaffected: breakers are per chip.
	if resp := submit(s, Request{Op: OpEstablish, A: 13, B: 30, Width: 1}, at); resp.Status != StatusOK {
		t.Fatalf("healthy chip collateral: %+v", resp)
	}
	// After the cooldown the breaker half-opens and probes the (still
	// dead) chip once, then fails fast again. The breaker tripped at
	// its service start time (behind the committed backlog), so jump
	// well past cooldown + the backlog's worth of service.
	at = s.Clock() + cfg.Breaker.Cooldown + 100*unit.Microsecond
	if resp := submit(s, Request{Op: OpEstablish, A: 12, B: 30, Width: 1}, at); resp.Status != StatusEndpointFailed {
		t.Fatalf("half-open probe: %+v", resp)
	}
	if resp := submit(s, Request{Op: OpEstablish, A: 12, B: 30, Width: 1}, at); resp.Status != StatusBreakerOpen {
		t.Fatalf("post-probe rejection: %+v", resp)
	}
}

// TestServerDegradedEstablish exhausts a chip's lasers until full-width
// setup fails, then checks the server falls back to a degraded grant
// with the wire interface unchanged.
func TestServerDegradedEstablish(t *testing.T) {
	s := newTestServer(t, nil)
	at := unit.Seconds(0)
	// Fifteen of the 16 lasers on chip 0's tile: seven width-2 circuits
	// plus one width-1, leaving exactly one laser — enough for half of
	// the next width-2 ask, not all of it.
	for i := 0; i < 7; i++ {
		at += 10 * unit.Microsecond
		if resp := submit(s, Request{Op: OpEstablish, A: 0, B: 1 + i, Width: 2}, at); resp.Status != StatusOK {
			t.Fatalf("fill establish %d: %+v", i, resp)
		}
	}
	at += 10 * unit.Microsecond
	if resp := submit(s, Request{Op: OpEstablish, A: 0, B: 10, Width: 1}, at); resp.Status != StatusOK {
		t.Fatalf("fill establish width 1: %+v", resp)
	}
	at += 10 * unit.Microsecond
	resp := submit(s, Request{Op: OpEstablish, A: 0, B: 20, Width: 2}, at)
	if resp.Status != StatusOK {
		t.Fatalf("expected a grant on the degradation ladder: %+v", resp)
	}
	if !resp.Degraded || resp.Width >= 2 {
		t.Fatalf("grant %+v: want degraded below width 2", resp)
	}
	if st := s.Stats(); st.Degraded != 1 {
		t.Fatalf("degraded count %d, want 1", st.Degraded)
	}
}

// TestServerHealthBypassesAdmission pins the operability contract: an
// overloaded controller still answers health, with the queue depth and
// per-region breaker states in the report.
func TestServerHealthBypassesAdmission(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.QueueCap = 2 })
	for i := 0; i < 6; i++ {
		submit(s, Request{Op: OpEstablish, A: i, B: i + 20, Width: 1}, 0)
	}
	h := submit(s, Request{Op: OpHealth}, 0)
	if h.Status != StatusOK {
		t.Fatalf("health under overload: %+v", h)
	}
	if h.Queue != 2 {
		t.Fatalf("health queue %d, want 2 (the cap)", h.Queue)
	}
	if len(h.Regions) != s.Allocator().Rack().NumChips() {
		t.Fatalf("health regions %d, want one per chip (%d)", len(h.Regions), s.Allocator().Rack().NumChips())
	}
}

// TestServerFaultReroutesHeldCircuits breaks a held circuit with a chip
// death and checks the fault report: the broken circuit is either
// rerouted (new ID, possibly narrower) or reported lost, and counters
// agree.
func TestServerFaultReroutesHeldCircuits(t *testing.T) {
	s := newTestServer(t, nil)
	est := submit(s, Request{Op: OpEstablish, A: 3, B: 9, Width: 2}, 0)
	if est.Status != StatusOK {
		t.Fatalf("establish: %+v", est)
	}
	rep, err := s.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: 3}, unit.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) != 1 || rep.Moves[0].OldID != est.Circuit {
		t.Fatalf("fault report %+v: want exactly the held circuit", rep.Moves)
	}
	// Chip 3 is dead, so the reroute cannot resurrect an endpoint: the
	// circuit must be reported lost, not silently kept.
	if rep.Moves[0].NewID != -1 {
		t.Fatalf("circuit with a dead endpoint rerouted to %d", rep.Moves[0].NewID)
	}
	st := s.Stats()
	if st.FaultsApplied != 1 || st.CircuitsLost != 1 || st.RerouteFailed != 1 {
		t.Fatalf("fault stats %+v", st)
	}
	if s.Allocator().NumCircuits() != 0 {
		t.Fatalf("lost circuit still held: %d circuits", s.Allocator().NumCircuits())
	}
	if s.Auditor().Count() != 0 {
		t.Fatalf("auditor tripped on fault handling: %v", s.Auditor().Err())
	}
}
