package ctrl

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"lightpath/internal/unit"
)

// FuzzCtrlDecode throws arbitrary bytes at every inbound parser the
// daemon exposes to the network: the frame reader and both payload
// decoders. The contract under fuzzing is total: no panic, no hang, no
// unbounded allocation, and every failure classified — ReadFrame
// returns io.EOF or wraps ErrBadFrame, the decoders wrap ErrBadFrame.
// A request that decodes successfully must re-encode byte-identically
// (request payloads are all fixed-width fields, so the codec has
// exactly one representation; responses carry uvarint-prefixed
// strings, where non-canonical-but-decodable prefixes exist, so they
// only promise classified errors).
func FuzzCtrlDecode(f *testing.F) {
	f.Add(EncodeRequest(Request{ID: 1, Op: OpEstablish, A: 3, B: 9, Width: 2, Deadline: unit.Millisecond}))
	f.Add(EncodeRequest(Request{ID: 2, Op: OpRelease, Circuit: 17}))
	f.Add(EncodeResponse(Response{ID: 3, Status: StatusOK, Circuit: 4, Width: 2}))
	f.Add(EncodeResponse(Response{ID: 4, Status: StatusOverloaded, Detail: "queue 512 full",
		Regions: []RegionHealth{{State: BreakerOpen, Trips: 3}}}))
	f.Add(AppendFrame(nil, EncodeRequest(Request{Op: OpHealth})))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Add([]byte{0x10, 0x00, 0x00, 0x00, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("DecodeRequest error outside taxonomy: %v", err)
			}
		} else if !bytes.Equal(EncodeRequest(req), data) {
			t.Fatalf("request %+v re-encodes differently than its source", req)
		}

		if _, err := DecodeResponse(data); err != nil && !errors.Is(err, ErrBadFrame) {
			t.Fatalf("DecodeResponse error outside taxonomy: %v", err)
		}

		// Frame reader over the same bytes: consume frames until the
		// stream ends or turns hostile, with every outcome classified.
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("ReadFrame error outside taxonomy: %v", err)
				}
				break
			}
			if len(payload) > MaxFrame {
				t.Fatalf("ReadFrame returned %d bytes beyond MaxFrame", len(payload))
			}
		}
	})
}
