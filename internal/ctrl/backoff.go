package ctrl

import (
	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// Backoff is the client-side retry schedule: capped exponential with
// deterministic seeded jitter. Given the same rng stream it produces
// the same delays in the same order — the property test asserts the
// schedule is byte-identical across runs — so a million-agent load
// campaign that retries on ErrOverloaded stays exactly reproducible.
type Backoff struct {
	// Base is the first retry's nominal delay.
	Base unit.Seconds
	// Factor multiplies the nominal delay per attempt (>= 1).
	Factor float64
	// Cap bounds the nominal delay.
	Cap unit.Seconds
	// Jitter is the +/- fraction of the nominal delay the seeded
	// jitter draw spreads over, in [0, 1]: the delay for attempt k is
	// uniform in [nominal*(1-Jitter/2), nominal*(1+Jitter/2)).
	Jitter float64
	// MaxRetries is how many retries a client attempts before giving
	// up and counting the request lost.
	MaxRetries int
}

// DefaultBackoff returns the load generator's standard retry tuning:
// 20 us doubling to a 2 ms cap with 50% jitter, four retries.
func DefaultBackoff() Backoff {
	return Backoff{
		Base:       20 * unit.Microsecond,
		Factor:     2,
		Cap:        2 * unit.Millisecond,
		Jitter:     0.5,
		MaxRetries: 4,
	}
}

// Delay returns the retry delay for attempt k (0 = first retry),
// drawing the jitter from r. The nominal delay is min(Base*Factor^k,
// Cap); the returned delay is never negative and never more than
// Cap*(1+Jitter/2).
func (b Backoff) Delay(r *rng.Rand, attempt int) unit.Seconds {
	nominal := float64(b.Base)
	for i := 0; i < attempt; i++ {
		nominal *= b.Factor
		if nominal >= float64(b.Cap) {
			nominal = float64(b.Cap)
			break
		}
	}
	if nominal > float64(b.Cap) {
		nominal = float64(b.Cap)
	}
	if b.Jitter <= 0 {
		return unit.Seconds(nominal)
	}
	spread := 1 - b.Jitter/2 + b.Jitter*r.Float64()
	d := nominal * spread
	if d < 0 {
		d = 0
	}
	return unit.Seconds(d)
}
