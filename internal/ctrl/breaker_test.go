package ctrl

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// TestBreakerStateMachine walks the documented transitions directly:
// closed trips open at exactly FailThreshold consecutive failures, an
// open breaker rejects until the cooldown elapses, half-open admits
// exactly HalfOpenProbes, a probe success closes and a probe failure
// reopens.
func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{FailThreshold: 3, Cooldown: 10 * unit.Microsecond, HalfOpenProbes: 1}
	b := NewBreaker(cfg)

	// Closed: failures below the threshold stay closed; a success
	// resets the streak.
	for i := 0; i < cfg.FailThreshold-1; i++ {
		if err := b.Allow(0); err != nil {
			t.Fatalf("closed breaker rejected: %v", err)
		}
		b.Failure(0)
	}
	b.Success()
	for i := 0; i < cfg.FailThreshold-1; i++ {
		b.Failure(0)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("breaker tripped below threshold after a reset: %v", b.State())
	}

	// The threshold-th consecutive failure trips it.
	b.Failure(0)
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state %v trips %d after threshold, want open/1", b.State(), b.Trips())
	}

	// Open: rejects with the taxonomy sentinel until cooldown.
	if err := b.Allow(cfg.Cooldown / 2); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker before cooldown: %v", err)
	}

	// Cooldown elapsed: half-open, admits exactly HalfOpenProbes.
	if err := b.Allow(cfg.Cooldown); err != nil {
		t.Fatalf("half-open transition rejected the probe: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", b.State())
	}
	if err := b.Allow(cfg.Cooldown); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe quota not enforced: %v", err)
	}

	// A probe failure reopens immediately.
	b.Failure(cfg.Cooldown)
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state %v trips %d after probe failure, want open/2", b.State(), b.Trips())
	}

	// Next epoch: probe succeeds, breaker closes and passes freely.
	if err := b.Allow(2 * cfg.Cooldown); err != nil {
		t.Fatalf("second half-open probe rejected: %v", err)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after probe success, want closed", b.State())
	}
	if err := b.Allow(2 * cfg.Cooldown); err != nil {
		t.Fatalf("closed breaker rejected after recovery: %v", err)
	}
}

// breakerTrace drives one seeded random workload through a breaker and
// returns the full transition trace, checking state-machine legality
// at every step.
func breakerTrace(t *testing.T, seed uint64) string {
	t.Helper()
	r := rng.New(seed)
	cfg := BreakerConfig{
		FailThreshold:  2 + r.Intn(6),
		Cooldown:       unit.Seconds(1+r.Intn(20)) * unit.Microsecond,
		HalfOpenProbes: 1 + r.Intn(3),
	}
	b := NewBreaker(cfg)
	var trace strings.Builder
	fmt.Fprintf(&trace, "cfg=%+v\n", cfg)
	now := unit.Seconds(0)
	prev := b.State()
	for step := 0; step < 400; step++ {
		now += unit.Seconds(r.Intn(5)) * unit.Microsecond
		if err := b.Allow(now); err != nil {
			if !errors.Is(err, ErrBreakerOpen) {
				t.Fatalf("step %d: rejection outside the taxonomy: %v", step, err)
			}
			fmt.Fprintf(&trace, "%d reject %v\n", step, b.State())
		} else {
			// An admitted request resolves either way, biased toward
			// failure so trips actually happen.
			if r.Float64() < 0.6 {
				b.Failure(now)
				fmt.Fprintf(&trace, "%d fail -> %v\n", step, b.State())
			} else {
				b.Success()
				fmt.Fprintf(&trace, "%d ok -> %v\n", step, b.State())
			}
		}
		cur := b.State()
		// Transitions observed across one step. Open -> closed and
		// open -> open are legal because a single step can pass
		// through half-open: Allow flips open to half-open and the
		// probe's Success/Failure resolves it immediately.
		legal := map[[2]BreakerState]bool{
			{BreakerClosed, BreakerClosed}: true, {BreakerClosed, BreakerOpen}: true,
			{BreakerOpen, BreakerOpen}: true, {BreakerOpen, BreakerHalfOpen}: true,
			{BreakerOpen, BreakerClosed}:       true,
			{BreakerHalfOpen, BreakerHalfOpen}: true, {BreakerHalfOpen, BreakerClosed}: true,
			{BreakerHalfOpen, BreakerOpen}: true,
		}
		if !legal[[2]BreakerState{prev, cur}] {
			t.Fatalf("step %d: illegal transition %v -> %v", step, prev, cur)
		}
		prev = cur
	}
	fmt.Fprintf(&trace, "trips=%d\n", b.Trips())
	if b.Trips() == 0 {
		t.Fatalf("seed %d: workload never tripped the breaker", seed)
	}
	return trace.String()
}

// TestBreakerDeterministic replays 200 seeded random workloads twice
// and demands byte-identical transition traces — the breaker is a pure
// function of its call sequence, with no hidden wall-clock or map-order
// dependence. Run under -race this also proves the trace computation
// shares nothing between trials.
func TestBreakerDeterministic(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		seed := uint64(trial)
		if a, b := breakerTrace(t, seed), breakerTrace(t, seed); a != b {
			t.Fatalf("seed %d: transition traces diverged:\n--- first ---\n%s--- second ---\n%s", seed, a, b)
		}
	}
}

// TestBreakerSnapshotRoundTrip checks a breaker restored mid-epoch
// behaves identically to the original.
func TestBreakerSnapshotRoundTrip(t *testing.T) {
	cfg := BreakerConfig{FailThreshold: 2, Cooldown: 5 * unit.Microsecond, HalfOpenProbes: 1}
	b := NewBreaker(cfg)
	b.Failure(0)
	b.Failure(0) // trips at t=0
	var e snapshot.Encoder
	b.EncodeState(&e)
	r := NewBreaker(cfg)
	if err := r.RestoreState(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r.State() != b.State() || r.Trips() != b.Trips() {
		t.Fatalf("restored breaker %v/%d, want %v/%d", r.State(), r.Trips(), b.State(), b.Trips())
	}
	// Both must flip half-open at the same instant.
	errA, errB := b.Allow(cfg.Cooldown), r.Allow(cfg.Cooldown)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("restored breaker diverged at cooldown: %v vs %v", errA, errB)
	}
}
