package ctrl

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/invariant"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// workServer drives a server through a representative mixed history:
// establishes (some degraded), releases, a chip-death fault with its
// reroutes, breaker traffic and shed arrivals.
func workServer(t *testing.T, s *Server) {
	t.Helper()
	at := unit.Seconds(0)
	var circuits []int
	for i := 0; i < 20; i++ {
		at += 3 * unit.Microsecond
		resp := submit(s, Request{Op: OpEstablish, A: i % 8, B: 20 + i%9, Width: 2}, at)
		if resp.Status == StatusOK {
			circuits = append(circuits, resp.Circuit)
		}
	}
	for _, id := range circuits[:len(circuits)/3] {
		at += unit.Microsecond
		submit(s, Request{Op: OpRelease, Circuit: id}, at)
	}
	if _, err := s.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: 2}, at); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		at += 200 * unit.Nanosecond
		submit(s, Request{Op: OpEstablish, A: 2, B: 40, Width: 1}, at) // dead chip: trips the breaker
	}
}

// TestCheckpointRoundTrip snapshots a worked server mid-life, restores
// it, and demands the restored instance is observationally identical —
// stats, clock, queue, breaker trips, circuit inventory — and behaves
// identically on the next request.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := Config{Seed: 11, Audit: invariant.Paranoid}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(invariant.ResetGlobal)
	workServer(t, s)

	path := filepath.Join(t.TempDir(), "ctrl.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	r, err := LoadCheckpoint(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats() != s.Stats() {
		t.Fatalf("stats diverge:\n  orig %+v\n  rest %+v", s.Stats(), r.Stats())
	}
	if r.Clock() != s.Clock() || r.QueueDepth() != s.QueueDepth() || r.BreakerTrips() != s.BreakerTrips() {
		t.Fatalf("clock/queue/trips diverge: %v/%d/%d vs %v/%d/%d",
			r.Clock(), r.QueueDepth(), r.BreakerTrips(), s.Clock(), s.QueueDepth(), s.BreakerTrips())
	}
	want, got := s.Allocator().Circuits(), r.Allocator().Circuits()
	if len(want) != len(got) {
		t.Fatalf("circuit inventory %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("circuit %d diverges: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Same next request, same outcome — byte for byte.
	at := s.Clock() + 50*unit.Microsecond
	a, _ := s.Submit(Request{ID: 9, Op: OpEstablish, A: 7, B: 33, Width: 2}, at)
	b, _ := r.Submit(Request{ID: 9, Op: OpEstablish, A: 7, B: 33, Width: 2}, at)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("restored server answered differently: %+v vs %+v", b, a)
	}
}

// TestCheckpointBacklogBeyondQueueCap pins a subtle interaction:
// releases are exempt from queue-full shedding, so a live backlog can
// legitimately exceed QueueCap — and a checkpoint taken at such an
// instant must still restore (an earlier validation rejected it as
// corrupt).
func TestCheckpointBacklogBeyondQueueCap(t *testing.T) {
	cfg := Config{Seed: 8, QueueCap: 4}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(invariant.ResetGlobal)
	// Held circuits to tear down later, established with the queue idle.
	var circuits []int
	for i := 0; i < 6; i++ {
		at := unit.Seconds(i+1) * 100 * unit.Microsecond
		resp := submit(s, Request{Op: OpEstablish, A: i % 8, B: 20 + i, Width: 1}, at)
		if resp.Status != StatusOK {
			t.Fatalf("setup establish %d: %+v", i, resp)
		}
		circuits = append(circuits, resp.Circuit)
	}
	// One instant: fill the queue with establishes, then pile the
	// exempt releases on top of the full queue.
	burst := s.Clock() + unit.Millisecond
	for i := 0; i < cfg.QueueCap; i++ {
		submit(s, Request{Op: OpEstablish, A: i % 8, B: 30 + i, Width: 1}, burst)
	}
	for _, id := range circuits {
		if resp := submit(s, Request{Op: OpRelease, Circuit: id}, burst); resp.Status != StatusOK {
			t.Fatalf("release %d rejected: %+v", id, resp)
		}
	}
	if depth := s.QueueDepth(); depth <= cfg.QueueCap {
		t.Fatalf("backlog %d did not exceed QueueCap %d: the scenario lost its point", depth, cfg.QueueCap)
	}

	path := filepath.Join(t.TempDir(), "over.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	r, err := LoadCheckpoint(cfg, path)
	if err != nil {
		t.Fatalf("restore of an over-cap backlog checkpoint: %v", err)
	}
	if r.Stats() != s.Stats() || r.QueueDepth() != s.QueueDepth() {
		t.Fatalf("restored server diverges: stats %+v vs %+v, depth %d vs %d",
			r.Stats(), s.Stats(), r.QueueDepth(), s.QueueDepth())
	}
}

// TestCheckpointConfigMismatch pins the digest gate: a checkpoint
// taken under one config must refuse to restore under another.
func TestCheckpointConfigMismatch(t *testing.T) {
	cfg := Config{Seed: 3}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(invariant.ResetGlobal)
	path := filepath.Join(t.TempDir(), "ctrl.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.QueueCap = 9
	if _, err := LoadCheckpoint(bad, path); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("queue-cap change: %v, want ErrConfigMismatch", err)
	}
	bad = cfg
	bad.Seed = 4
	if _, err := LoadCheckpoint(bad, path); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("seed change: %v, want ErrConfigMismatch", err)
	}
}

// TestCheckpointCorruption pins the failure taxonomy for damaged
// snapshot files: truncation and bit-flips surface ErrCorruptSnapshot,
// never a panic or a silently wrong server.
func TestCheckpointCorruption(t *testing.T) {
	cfg := Config{Seed: 5}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(invariant.ResetGlobal)
	workServer(t, s)
	dir := t.TempDir()
	path := filepath.Join(dir, "ctrl.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"flipped":   func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"empty":     func(b []byte) []byte { return nil },
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte{}, data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(cfg, p); err == nil {
			t.Errorf("%s checkpoint restored without error", name)
		} else if !errors.Is(err, snapshot.ErrCorruptSnapshot) && !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("%s: error %v outside the snapshot taxonomy", name, err)
		}
	}
}

// TestCheckpointTornWriteFallsBack kills the primary snapshot after a
// rotation and checks Load falls back to the previous good one.
func TestCheckpointTornWriteFallsBack(t *testing.T) {
	cfg := Config{Seed: 6}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(invariant.ResetGlobal)
	path := filepath.Join(t.TempDir(), "ctrl.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	statsAtFirst := s.Stats()
	workServer(t, s)
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	// Tear the primary: the .prev rotation must save the day.
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadCheckpoint(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats() != statsAtFirst {
		t.Fatalf("fallback restored stats %+v, want the first checkpoint's %+v", r.Stats(), statsAtFirst)
	}
}
