// Package ctrl is the long-running lightpath-controller runtime: a
// persistent service core that owns a route.Allocator/invariant.Auditor
// pair and serves circuit establish/release/reroute/health requests
// behind a length-prefixed binary wire protocol.
//
// The package is built around a virtual clock. Every robustness
// decision — queue admission, per-request deadlines, breaker cooldowns,
// service completion — is taken against simulated unit.Seconds that
// advance by modeled service times, never against the wall clock, so a
// million-request load campaign over the same core is bit-for-bit
// reproducible from its seed and the live daemon (cmd/lightpath-
// controller) inherits the exact semantics the campaign validated.
//
// Robustness semantics, in the order a request meets them:
//
//  1. Admission: a bounded virtual queue sheds with ErrOverloaded when
//     the backlog would exceed QueueCap requests (backpressure).
//  2. Deadline: a request whose queue wait alone would overrun its
//     deadline is rejected with ErrDeadlineExceeded before it touches
//     the allocator.
//  3. Breaker: each fabric region (wafer) owns a circuit breaker;
//     consecutive setup failures trip it open and requests for the
//     region fail fast with ErrBreakerOpen until the cooldown elapses
//     and a half-open probe succeeds.
//  4. Degradation ladder: a failed fast-path establish transparently
//     falls back to width-halving (EstablishDegraded); circuits broken
//     by faults are rerouted first, then degraded, then shed. The wire
//     interface never changes shape while the fabric degrades.
package ctrl

import (
	"errors"
	"fmt"
)

// ErrOverloaded reports that the controller's bounded request queue is
// full and the request was shed at admission. Clients should back off
// and retry; the condition is transient by construction.
var ErrOverloaded = errors.New("ctrl: controller overloaded, request shed")

// ErrDeadlineExceeded reports that a request could not be served
// within its deadline: the queue wait plus service time overran the
// budget the client attached to the request.
var ErrDeadlineExceeded = errors.New("ctrl: request deadline exceeded")

// ErrBreakerOpen reports that the fabric region's circuit breaker is
// open after consecutive setup failures: the controller fails fast
// instead of burning allocator work on a region that is currently
// unroutable.
var ErrBreakerOpen = errors.New("ctrl: region circuit breaker open")

// Preallocated Allow rejections: a tripped breaker turns away every
// request in its cooldown window, so these fire at full request rate.
// Both wrap ErrBreakerOpen for errors.Is.
var (
	errBreakerCooling = fmt.Errorf("%w: cooling down", ErrBreakerOpen)
	errBreakerProbing = fmt.Errorf("%w: half-open probe quota reached", ErrBreakerOpen)
)

// ErrBadFrame reports a malformed wire-protocol frame: truncated,
// oversized, carrying an unknown message type, or failing the payload
// codec. Every decode failure in this package wraps it, so transports
// gate close-the-connection behavior on a single errors.Is check —
// and never panic or hang on hostile bytes.
var ErrBadFrame = errors.New("ctrl: malformed wire frame")

// ErrUnknownCircuit reports a release or reroute request naming a
// circuit ID the controller does not currently hold.
var ErrUnknownCircuit = errors.New("ctrl: unknown circuit id")

// ErrConfigMismatch reports a checkpoint written under a different
// configuration — restoring it would silently break determinism
// instead of continuing the run.
var ErrConfigMismatch = errors.New("ctrl: checkpoint config does not match")
