package ctrl

import (
	"fmt"

	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// This file is the controller's crash-tolerance layer. A server's full
// mutable state — allocator, auditor, per-region breakers, virtual
// clock, backlog and counters — serializes through the snapshot codec
// at request boundaries, so a controller killed at any boundary and
// restored from its last checkpoint continues bit-for-bit identically.
// The load generator embeds this state inside its own campaign
// checkpoint; the daemon writes it to a standalone file.

// CheckpointVersion is the daemon checkpoint payload format.
const CheckpointVersion = 1

// configDigest encodes every Config field that shapes controller
// behavior. Restores compare digests byte-for-byte: a checkpoint is
// only continuable under the exact configuration that produced it.
func (s *Server) configDigest() []byte {
	var e snapshot.Encoder
	c := s.cfg
	e.U64(c.Seed)
	e.Int(c.Wafers)
	e.Int(c.WaferConfig.Rows)
	e.Int(c.WaferConfig.Cols)
	e.Int(c.WaferConfig.LasersPerTile)
	e.Int(c.WaferConfig.SerDesPortsPerTile)
	e.Int(c.WaferConfig.BusesPerLane)
	e.Int(c.WaferConfig.FibersPerEdge)
	e.Int(c.QueueCap)
	snapshot.Unit(&e, c.EstablishService)
	snapshot.Unit(&e, c.ReleaseService)
	snapshot.Unit(&e, c.RerouteService)
	e.Int(c.Breaker.FailThreshold)
	snapshot.Unit(&e, c.Breaker.Cooldown)
	e.Int(c.Breaker.HalfOpenProbes)
	e.Int(int(c.Audit))
	return e.Bytes()
}

// EncodeState appends the server's full mutable state.
func (s *Server) EncodeState(e *snapshot.Encoder) {
	e.String(string(s.configDigest()))
	s.alloc.EncodeState(e)
	s.aud.EncodeState(e)
	e.Len(len(s.breakers))
	for _, b := range s.breakers {
		b.EncodeState(e)
	}
	snapshot.Unit(e, s.now)
	snapshot.Unit(e, s.busyUntil)
	e.Len(len(s.pending))
	for _, t := range s.pending {
		snapshot.Unit(e, t)
	}
	st := s.stats
	e.Int(st.Arrivals)
	e.Int(st.Served)
	e.Int(st.Degraded)
	e.Int(st.Shed)
	e.Int(st.DeadlineMiss)
	e.Int(st.BreakerRejects)
	e.Int(st.NoPath)
	e.Int(st.EndpointFailed)
	e.Int(st.UnknownCircuit)
	e.Int(st.BadRequest)
	e.Int(st.FaultsApplied)
	e.Int(st.Reroutes)
	e.Int(st.RerouteDegraded)
	e.Int(st.RerouteFailed)
	e.Int(st.CircuitsLost)
}

// RestoreState replays state captured by EncodeState into a freshly
// built server with the same Config. A digest mismatch returns
// ErrConfigMismatch; structural corruption wraps ErrCorruptSnapshot.
func (s *Server) RestoreState(d *snapshot.Decoder) error {
	if digest := d.String(); d.Err() == nil && digest != string(s.configDigest()) {
		return ErrConfigMismatch
	}
	if err := s.alloc.RestoreState(d); err != nil {
		return err
	}
	if err := s.aud.RestoreState(d); err != nil {
		return err
	}
	if n := d.Len(); d.Err() == nil && n != len(s.breakers) {
		return fmt.Errorf("%w: checkpoint has %d breakers, config says %d",
			snapshot.ErrCorruptSnapshot, n, len(s.breakers))
	}
	for _, b := range s.breakers {
		if err := b.RestoreState(d); err != nil {
			return err
		}
	}
	s.now = snapshot.DecodeUnit[unit.Seconds](d)
	s.busyUntil = snapshot.DecodeUnit[unit.Seconds](d)
	// No cap check on the backlog length: releases are exempt from
	// queue-full shedding, so a live server's backlog legitimately
	// exceeds QueueCap whenever teardowns arrive at a full queue.
	// Len() is already bounded by the decoder's remaining bytes, and
	// the monotonicity check below catches structural damage.
	n := d.Len()
	s.pending = s.pending[:0]
	prev := unit.Seconds(0)
	for i := 0; i < n; i++ {
		t := snapshot.DecodeUnit[unit.Seconds](d)
		if d.Err() == nil && t < prev {
			return fmt.Errorf("%w: backlog completion times out of order", snapshot.ErrCorruptSnapshot)
		}
		prev = t
		s.pending = append(s.pending, t)
	}
	s.stats = Stats{
		Arrivals:        d.Int(),
		Served:          d.Int(),
		Degraded:        d.Int(),
		Shed:            d.Int(),
		DeadlineMiss:    d.Int(),
		BreakerRejects:  d.Int(),
		NoPath:          d.Int(),
		EndpointFailed:  d.Int(),
		UnknownCircuit:  d.Int(),
		BadRequest:      d.Int(),
		FaultsApplied:   d.Int(),
		Reroutes:        d.Int(),
		RerouteDegraded: d.Int(),
		RerouteFailed:   d.Int(),
		CircuitsLost:    d.Int(),
	}
	return d.Err()
}

// SaveCheckpoint atomically writes the server's state to path, keeping
// the previous good snapshot beside it for torn-write fallback. The
// encoder is owned by the server and reused across checkpoints, so a
// periodic-durability cadence does not re-grow a megabyte-scale buffer
// every interval.
func (s *Server) SaveCheckpoint(path string) error {
	s.ckptEnc.Reset()
	s.EncodeState(&s.ckptEnc)
	return snapshot.Write(path, CheckpointVersion, s.ckptEnc.Bytes())
}

// LoadCheckpoint builds a server from cfg and restores the checkpoint
// at path into it. A corrupted or torn primary snapshot falls back to
// the previous good one (snapshot.Load's contract).
func LoadCheckpoint(cfg Config, path string) (*Server, error) {
	version, payload, _, err := snapshot.Load(path)
	if err != nil {
		return nil, err
	}
	if version != CheckpointVersion {
		return nil, fmt.Errorf("%w: checkpoint format v%d, this build reads v%d",
			snapshot.ErrCorruptSnapshot, version, CheckpointVersion)
	}
	s, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.RestoreState(snapshot.NewDecoder(payload)); err != nil {
		return nil, err
	}
	return s, nil
}
