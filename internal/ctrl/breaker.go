package ctrl

import (
	"fmt"

	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// BreakerState is the circuit breaker's position in the classic
// closed → open → half-open state machine.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed passes requests through and counts consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a limited number of probe requests; one
	// success closes the breaker, one failure reopens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig parameterizes one region breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that trips a
	// closed breaker open.
	FailThreshold int
	// Cooldown is how long an open breaker rejects before allowing
	// half-open probes.
	Cooldown unit.Seconds
	// HalfOpenProbes is how many concurrent-epoch probe requests a
	// half-open breaker admits before further requests fail fast.
	HalfOpenProbes int
}

// DefaultBreakerConfig returns the controller's standard breaker
// tuning: trip after 8 consecutive setup failures, cool down for one
// simulated millisecond (hundreds of request slots), probe one
// request at a time.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{FailThreshold: 8, Cooldown: unit.Millisecond, HalfOpenProbes: 1}
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.FailThreshold <= 0 {
		c.FailThreshold = d.FailThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = d.Cooldown
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = d.HalfOpenProbes
	}
	return c
}

// Breaker is one fabric region's circuit breaker. It is a pure,
// deterministic state machine over virtual time: identical call
// sequences produce identical transitions, which is what the seeded
// property tests assert.
type Breaker struct {
	cfg BreakerConfig

	state    BreakerState
	failures int          // consecutive failures while closed
	openedAt unit.Seconds // when the breaker last tripped
	probes   int          // in-flight half-open probes
	trips    int          // lifetime open transitions
}

// NewBreaker builds a closed breaker with the config (zero fields get
// defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the breaker's current state without advancing it.
func (b *Breaker) State() BreakerState { return b.state }

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() int { return b.trips }

// Allow reports whether a request may proceed at virtual time now. An
// open breaker whose cooldown has elapsed transitions to half-open and
// admits up to HalfOpenProbes probes; each admitted request must be
// resolved with exactly one Success or Failure call.
func (b *Breaker) Allow(now unit.Seconds) error {
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if now < b.openedAt+b.cfg.Cooldown {
			// Static: an open breaker rejects every request of the cooldown
			// window, so this path is far too hot for a formatted error.
			return errBreakerCooling
		}
		b.state = BreakerHalfOpen
		b.probes = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			return errBreakerProbing
		}
		b.probes++
		return nil
	}
}

// Success resolves an admitted request favorably: it resets the
// consecutive-failure count and closes a half-open breaker.
func (b *Breaker) Success() {
	b.failures = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.probes = 0
	}
}

// Failure resolves an admitted request unfavorably at virtual time
// now: a half-open probe failure reopens the breaker immediately, and
// a closed breaker trips once the consecutive-failure count reaches
// the threshold.
func (b *Breaker) Failure(now unit.Seconds) {
	switch b.state {
	case BreakerHalfOpen:
		b.trip(now)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailThreshold {
			b.trip(now)
		}
	}
}

// trip opens the breaker.
func (b *Breaker) trip(now unit.Seconds) {
	b.state = BreakerOpen
	b.openedAt = now
	b.failures = 0
	b.probes = 0
	b.trips++
}

// EncodeState appends the breaker's mutable state (config is rebuilt
// by the restoring side).
func (b *Breaker) EncodeState(e *snapshot.Encoder) {
	e.Int(int(b.state))
	e.Int(b.failures)
	snapshot.Unit(e, b.openedAt)
	e.Int(b.probes)
	e.Int(b.trips)
}

// RestoreState replays state captured by EncodeState.
func (b *Breaker) RestoreState(d *snapshot.Decoder) error {
	s := d.Int()
	if s < int(BreakerClosed) || s > int(BreakerHalfOpen) {
		return fmt.Errorf("%w: breaker state %d", snapshot.ErrCorruptSnapshot, s)
	}
	b.state = BreakerState(s)
	b.failures = d.Int()
	b.openedAt = snapshot.DecodeUnit[unit.Seconds](d)
	b.probes = d.Int()
	b.trips = d.Int()
	return d.Err()
}
