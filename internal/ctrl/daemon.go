package ctrl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"lightpath/internal/chaos"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// This file is the controller's transport: a Handler that serializes
// concurrent connections onto the single-threaded Server core, and a
// Client that speaks the frame protocol from the other end. The live
// daemon runs on logical time — each arrival advances the virtual
// clock by a fixed tick — so the deployed binary exercises exactly the
// semantics the deterministic load campaign validated, without ever
// reading the wall clock.

// Handler owns a Server and makes it safe for concurrent connections.
// All mutation funnels through one mutex, matching the allocator's
// single-writer requirement; the frame protocol below it is already
// request/response, so per-request locking preserves linearizability.
type Handler struct {
	mu      sync.Mutex
	srv     *Server
	tick    unit.Seconds
	arrival unit.Seconds

	// Optional durability: when ckptEvery > 0, every ckptEvery-th
	// request snapshots the server to ckptPath at the request boundary.
	ckptPath  string
	ckptEvery uint64
	requests  uint64
	ckptErr   error
}

// NewHandler wraps a server. Each submitted request arrives `tick`
// simulated seconds after the previous one; a zero tick lands every
// request on the same virtual instant, which engages the bounded
// queue and shedding under bursts (useful for overload drills).
func NewHandler(srv *Server, tick unit.Seconds) *Handler {
	return &Handler{srv: srv, tick: tick, arrival: srv.Clock()}
}

// SetCheckpoint arms periodic durability: every `every`-th request the
// handler snapshots the server to path. The first write failure is
// latched (see CheckpointErr) and disarms further attempts so a full
// disk degrades durability, not service.
func (h *Handler) SetCheckpoint(path string, every uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ckptPath = path
	h.ckptEvery = every
}

// CheckpointErr reports the latched periodic-checkpoint failure, if any.
func (h *Handler) CheckpointErr() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ckptErr
}

// Submit runs one request through the server at the next logical
// arrival instant.
func (h *Handler) Submit(req Request) Response {
	h.mu.Lock()
	defer h.mu.Unlock()
	resp, _ := h.srv.Submit(req, h.arrival)
	h.arrival += h.tick
	h.requests++
	if h.ckptEvery > 0 && h.requests%h.ckptEvery == 0 {
		if err := h.srv.SaveCheckpoint(h.ckptPath); err != nil {
			h.ckptErr = err
			h.ckptEvery = 0
		}
	}
	return resp
}

// ApplyFault injects a fabric fault at the current logical instant and
// reroutes the circuits it broke.
func (h *Handler) ApplyFault(f chaos.Fault) (FaultReport, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.srv.ApplyFault(f, h.arrival)
}

// Checkpoint writes the server's state to path at a request boundary.
func (h *Handler) Checkpoint(path string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.srv.SaveCheckpoint(path)
}

// Stats returns a copy of the server's counters.
func (h *Handler) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.srv.Stats()
}

// ServeConn answers frames on one connection until the peer closes it
// (returns nil) or a frame fails to parse (closes the connection and
// returns the ErrBadFrame-wrapped cause: a hostile peer costs one
// connection, never a wedged controller).
//
// Hot-marked: this loop runs once per request for a connection's whole
// lifetime, so all wire I/O must go through the connection's frameIO
// scratch rather than fresh buffers.
//
//lightpath:hotloop
func (h *Handler) ServeConn(conn net.Conn) error {
	defer func() { _ = conn.Close() }()
	// Per-connection I/O state: the read buffer, payload encoder and
	// frame buffer are threaded through every iteration, so a settled
	// connection serves requests without allocating.
	var fio frameIO
	for {
		payload, err := fio.read(conn)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			return err
		}
		resp := h.Submit(req)
		fio.enc.Reset()
		EncodeResponseTo(&fio.enc, resp)
		if err := fio.write(conn); err != nil {
			return err
		}
	}
}

// frameIO is one connection's reusable wire-I/O state: a frame read
// buffer, a payload encoder, and a frame write buffer. The zero value
// is ready; each buffer settles at the largest frame the connection
// has seen and is reused thereafter.
type frameIO struct {
	rbuf  []byte
	enc   snapshot.Encoder
	frame []byte
}

// read returns the next frame's payload, which aliases the read buffer
// and is valid until the next read call.
func (f *frameIO) read(r io.Reader) ([]byte, error) {
	payload, buf, err := readFrameReuse(r, f.rbuf)
	f.rbuf = buf
	return payload, err
}

// write frames the encoder's current payload and writes it in one call.
func (f *frameIO) write(w io.Writer) error {
	f.frame = AppendFrame(f.frame[:0], f.enc.Bytes())
	if _, err := w.Write(f.frame); err != nil {
		return fmt.Errorf("ctrl: write frame: %w", err)
	}
	return nil
}

// Serve accepts connections until the listener closes, answering each
// connection on its own goroutine. It returns nil when the listener
// shuts down.
func (h *Handler) Serve(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ctrl: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = h.ServeConn(conn) // a bad peer only costs its own conn
		}()
	}
}

// Client speaks the controller protocol over one connection. It is
// safe for concurrent use; calls are serialized on the wire.
type Client struct {
	mu   sync.Mutex
	conn io.ReadWriter
	next uint64
	fio  frameIO // reusable wire buffers, guarded by mu
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriter) *Client { return &Client{conn: conn} }

// Call sends one request and reads its response. Transport and frame
// failures surface as errors; server-side rejections surface in the
// response (use Response.Err to fold them into the error taxonomy).
func (c *Client) Call(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	c.fio.enc.Reset()
	EncodeRequestTo(&c.fio.enc, req)
	if err := c.fio.write(c.conn); err != nil {
		return Response{}, err
	}
	payload, err := c.fio.read(c.conn)
	if err != nil {
		return Response{}, err
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		return Response{}, err
	}
	if resp.ID != req.ID {
		return Response{}, fmt.Errorf("%w: response id %d for request %d", ErrBadFrame, resp.ID, req.ID)
	}
	return resp, nil
}

// Establish requests a circuit A<->B at width and returns the granted
// response; a non-OK status comes back as its taxonomy error.
func (c *Client) Establish(a, b, width int, deadline unit.Seconds) (Response, error) {
	resp, err := c.Call(Request{Op: OpEstablish, A: a, B: b, Width: width, Deadline: deadline})
	if err != nil {
		return resp, err
	}
	return resp, resp.Err()
}

// Release tears down a circuit by ID.
func (c *Client) Release(circuit int) error {
	resp, err := c.Call(Request{Op: OpRelease, Circuit: circuit})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Reroute asks the controller to move a circuit onto surviving
// resources, degrading width if it must.
func (c *Client) Reroute(circuit int, deadline unit.Seconds) (Response, error) {
	resp, err := c.Call(Request{Op: OpReroute, Circuit: circuit, Deadline: deadline})
	if err != nil {
		return resp, err
	}
	return resp, resp.Err()
}

// Health fetches the controller's health report.
func (c *Client) Health() (Response, error) {
	resp, err := c.Call(Request{Op: OpHealth})
	if err != nil {
		return resp, err
	}
	return resp, resp.Err()
}
