// Package loadgen is the controller's load harness: a deterministic
// discrete-event simulation of thousands of client agents driving one
// ctrl.Server through open-loop Poisson arrivals, capped-backoff
// retries, circuit hold/release cycles and mid-run chaos faults.
//
// Everything runs on the controller's virtual clock. Agents draw
// interarrival gaps, peer choices, hold times and retry jitter from
// per-agent split rng streams, so a campaign is a pure function of its
// Config — byte-identical across runs, across sequential/parallel
// trial execution, and across kill→resume from any event boundary.
// That is what lets a million-request campaign publish a golden CSV.
package loadgen

import (
	"fmt"

	"lightpath/internal/chaos"
	"lightpath/internal/ctrl"
	"lightpath/internal/rng"
	"lightpath/internal/sketch"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// Config parameterizes one load campaign.
type Config struct {
	// Seed drives every stochastic stream in the campaign: the
	// controller's loss model, each agent's arrivals and jitter, the
	// chaos schedule and the quantile sketch.
	Seed uint64
	// Ctrl configures the controller under load. Its Seed field is
	// overridden with the campaign seed.
	Ctrl ctrl.Config
	// Agents is the number of concurrent client agents (default 256).
	Agents int
	// ArrivalsPerAgent is how many fresh establish requests each agent
	// issues over the campaign (default 1000).
	ArrivalsPerAgent int
	// MeanInterarrival is each agent's open-loop Poisson gap between
	// fresh arrivals — open loop, so a slow controller does not slow
	// the offered load down (default 750 us).
	MeanInterarrival unit.Seconds
	// MeanHold is the mean (exponential) time a granted circuit is
	// held before release (default 1 ms).
	MeanHold unit.Seconds
	// Width is the lane width each establish requests (default 4).
	Width int
	// Deadline is the per-request service budget attached to establish
	// requests (default 1 ms; negative disables deadlines).
	Deadline unit.Seconds
	// Backoff is the agents' retry schedule (default ctrl.DefaultBackoff).
	Backoff ctrl.Backoff
	// Rates enables mid-run chaos faults; the zero value injects none.
	Rates chaos.Rates
}

func (c Config) withDefaults() Config {
	if c.Agents <= 0 {
		c.Agents = 256
	}
	if c.ArrivalsPerAgent <= 0 {
		c.ArrivalsPerAgent = 1000
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 750 * unit.Microsecond
	}
	if c.MeanHold <= 0 {
		c.MeanHold = unit.Millisecond
	}
	if c.Width <= 0 {
		c.Width = 4
	}
	if c.Deadline < 0 {
		c.Deadline = 0
	} else if c.Deadline == 0 {
		c.Deadline = unit.Millisecond
	}
	if c.Backoff == (ctrl.Backoff{}) {
		c.Backoff = ctrl.DefaultBackoff()
	}
	return c
}

// Result is one campaign's outcome.
type Result struct {
	// Requests is the number of fresh establish requests issued;
	// Attempts counts every submit including retries and releases.
	Requests, Attempts int
	// Served, Degraded, Shed, DeadlineMiss, BreakerRejects, NoPath and
	// EndpointFailed mirror the controller's counters.
	Served, Degraded, Shed, DeadlineMiss, BreakerRejects, NoPath, EndpointFailed int
	// Retries counts backoff-scheduled resubmits; Lost counts establish
	// requests abandoned after MaxRetries; Leaked counts circuits whose
	// release was abandoned after MaxRetries (should stay zero).
	Retries, Lost, Leaked int
	// BreakerTrips totals breaker open transitions across regions.
	BreakerTrips int
	// Faults, Reroutes, RerouteDegraded and CircuitsLost describe the
	// chaos path: faults applied, broken circuits transparently moved
	// (RerouteDegraded of them at reduced width) and circuits lost.
	Faults, Reroutes, RerouteDegraded, CircuitsLost int
	// GoodputWS is the delivered goodput in width-seconds: granted
	// width integrated over each circuit's actual lifetime.
	GoodputWS float64
	// P50us and P99us are the setup-latency percentiles in
	// microseconds over served establishes, first arrival to grant,
	// retries included.
	P50us, P99us float64
	// RPS is the offered attempt rate in requests per simulated second.
	RPS float64
	// Horizon is the campaign's virtual end time; Events the event
	// count (the checkpoint boundary space).
	Horizon unit.Seconds
	Events  uint64
	// Violations is the invariant auditor's violation count (must be
	// zero; Run also returns an error when it is not).
	Violations int
	// CacheHits and CacheMisses are the allocator's route-plan cache
	// counters at campaign end.
	CacheHits, CacheMisses uint64
}

// event kinds, in tie-break order within an instant only by seq — the
// sequence counter makes the event order total.
type evKind int

const (
	evArrival evKind = iota // agent issues its next fresh request
	evRetry                 // backoff-scheduled resubmit of a session
	evRelease               // session releases its circuit
	evFault                 // chaos fault hits the fabric
)

// event is one heap entry. agent is used by evArrival; session and
// attempt by evRetry/evRelease; fault indexes the precomputed chaos
// schedule (recomputed on resume, so only the index travels in a
// checkpoint).
type event struct {
	at      unit.Seconds
	seq     int
	kind    evKind
	agent   int
	session int
	attempt int
	fault   int
}

// eventHeap orders events by time, ties broken by issue sequence. It
// is a typed min-heap whose sift-up/sift-down replicate
// container/heap's algorithms exactly — the checkpoint serializes the
// heap in its raw array layout, and the pop order feeds every golden
// CSV, so the layout must stay bit-identical to the boxed
// implementation this replaces (which cost two interface allocations
// per event).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at < h[j].at {
		return true
	}
	if h[j].at < h[i].at {
		return false
	}
	return h[i].seq < h[j].seq
}

// push appends the event and sifts it up (container/heap's Push+up).
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	j := len(s) - 1
	for {
		i := (j - 1) / 2 // parent
		if i == j || !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

// pop removes and returns the minimum event (container/heap's
// Pop: swap root to the end, sift the new root down over the
// shortened prefix, take the former root off the end).
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && s.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	ev := s[n]
	*h = s[:n]
	return ev
}

// phase is a session's position in its lifecycle.
type phase int

const (
	phaseEstablish phase = iota // submitted or awaiting retry of establish
	phaseOpen                   // circuit granted, release scheduled
	phaseRelease                // release submitted or awaiting retry
)

// session is one fresh request's lifecycle: establish (with retries),
// hold, release (with retries). Sessions whose circuit is killed by a
// fault are closed by the fault handler; their stale release events
// no-op.
type session struct {
	agent      int
	a, b       int
	width      int
	phase      phase
	firstAt    unit.Seconds // first establish submit (latency baseline)
	circuit    int
	grantWidth int
	openedAt   unit.Seconds // when the current grant started (goodput baseline)
}

// agentState is one client agent: its chip, its independent rng
// stream, and how many fresh arrivals it has issued.
type agentState struct {
	chip   int
	r      *rng.Rand
	issued int
}

// campaign is the full simulation state.
type campaign struct {
	cfg      Config
	srv      *ctrl.Server
	agents   []*agentState
	schedule []chaos.Fault

	events      eventHeap
	seq         int
	processed   uint64
	nextSession int
	sessions    map[int]*session
	byCircuit   map[int]int // live circuit id -> session id

	quant     *sketch.Quantile
	requests  int
	attempts  int
	retries   int
	lost      int
	leaked    int
	goodputWS float64
}

// build constructs the campaign skeleton: server, agents, chaos
// schedule and the initial arrival events. Deterministic from cfg.
func build(cfg Config) (*campaign, error) {
	cfg = cfg.withDefaults()
	srvCfg := cfg.Ctrl
	srvCfg.Seed = cfg.Seed
	srv, err := ctrl.NewServer(srvCfg)
	if err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	c := &campaign{
		cfg:       cfg,
		srv:       srv,
		sessions:  make(map[int]*session),
		byCircuit: make(map[int]int),
		quant:     sketch.NewQuantile(0, root.Split("loadgen/sketch")),
	}
	chips := srv.Allocator().Rack().NumChips()
	if chips < 2 {
		return nil, fmt.Errorf("loadgen: need at least 2 chips, rack has %d", chips)
	}
	for i := 0; i < cfg.Agents; i++ {
		c.agents = append(c.agents, &agentState{
			chip: i % chips,
			r:    root.Split(fmt.Sprintf("loadgen/agent/%d", i)),
		})
	}

	// The fault schedule is precomputed over the nominal load horizon
	// (arrivals stop after ArrivalsPerAgent each); like the fleet soak,
	// only cursors travel in a checkpoint and the schedule itself is
	// recomputed from the config on resume.
	horizon := unit.Seconds(float64(cfg.ArrivalsPerAgent)) * cfg.MeanInterarrival
	rack := srv.Allocator().Rack()
	rackCfg := rack.Config()
	eng, err := chaos.NewEngine(cfg.Seed, chaos.Components{
		Chips:           rack.NumChips(),
		SwitchesPerTile: wafer.SwitchesPerTile,
		Wafers:          rack.NumWafers(),
		Rows:            rackCfg.Rows,
		Cols:            rackCfg.Cols,
		Trunks:          rack.NumTrunks(),
	}, cfg.Rates)
	if err != nil {
		return nil, err
	}
	c.schedule = eng.Schedule(horizon)

	// Seed the heap: each agent's first arrival, then every fault.
	for i, ag := range c.agents {
		c.push(event{at: unit.Seconds(ag.r.Exp(float64(cfg.MeanInterarrival))), kind: evArrival, agent: i})
	}
	for fi, f := range c.schedule {
		c.push(event{at: f.Time, kind: evFault, fault: fi})
	}
	return c, nil
}

// push stamps the next sequence number and inserts the event.
func (c *campaign) push(ev event) {
	ev.seq = c.seq
	c.seq++
	c.events.push(ev)
}

// Run executes the campaign to completion. The returned error is
// non-nil when a fault cannot be applied or the invariant auditor
// found violations — robust serving on corrupted state must not look
// like robust serving on correct state.
func Run(cfg Config) (*Result, error) {
	return RunCheckpointed(cfg, CheckpointOptions{})
}

// run drains the event heap, checkpointing at the configured cadence.
func (c *campaign) run(opts CheckpointOptions) (*Result, error) {
	for len(c.events) > 0 {
		ev := c.events.pop()
		switch ev.kind {
		case evArrival:
			c.onArrival(ev)
		case evRetry:
			c.onRetry(ev)
		case evRelease:
			c.onRelease(ev)
		case evFault:
			if err := c.onFault(ev); err != nil {
				return nil, err
			}
		}
		c.processed++
		if err := c.maybeCheckpoint(opts); err != nil {
			return nil, err
		}
		if opts.StopAfterEvents > 0 && c.processed >= opts.StopAfterEvents {
			return nil, ErrStopped
		}
	}
	return c.result()
}

// onArrival issues agent's next fresh establish and, while the agent
// has arrivals left, schedules the following one.
func (c *campaign) onArrival(ev event) {
	ag := c.agents[ev.agent]
	chips := c.srv.Allocator().Rack().NumChips()
	b := (ag.chip + 1 + ag.r.Intn(chips-1)) % chips
	id := c.nextSession
	c.nextSession++
	s := &session{
		agent:   ev.agent,
		a:       ag.chip,
		b:       b,
		width:   c.cfg.Width,
		firstAt: ev.at,
		circuit: -1,
	}
	c.sessions[id] = s
	c.requests++
	c.submit(id, s, 0, ev.at)

	ag.issued++
	if ag.issued < c.cfg.ArrivalsPerAgent {
		gap := unit.Seconds(ag.r.Exp(float64(c.cfg.MeanInterarrival)))
		c.push(event{at: ev.at + gap, kind: evArrival, agent: ev.agent})
	}
}

// onRetry resubmits a session's pending operation. The session may be
// gone (closed by a fault while the retry was queued) — stale retries
// no-op.
func (c *campaign) onRetry(ev event) {
	s, ok := c.sessions[ev.session]
	if !ok || s.phase == phaseOpen {
		return
	}
	c.submit(ev.session, s, ev.attempt, ev.at)
}

// onRelease submits a session's release. Stale events (circuit already
// lost to a fault) no-op.
func (c *campaign) onRelease(ev event) {
	s, ok := c.sessions[ev.session]
	if !ok || s.phase != phaseOpen {
		return
	}
	s.phase = phaseRelease
	c.submit(ev.session, s, 0, ev.at)
}

// onFault applies one scheduled fault and reconciles every session the
// blast radius touched: rerouted circuits keep their session (goodput
// credited at the old width, restarted at the new), lost circuits
// close theirs.
func (c *campaign) onFault(ev event) error {
	rep, err := c.srv.ApplyFault(c.schedule[ev.fault], ev.at)
	if err != nil {
		return err
	}
	for _, mv := range rep.Moves {
		sid, ok := c.byCircuit[mv.OldID]
		if !ok {
			continue
		}
		s := c.sessions[sid]
		c.goodputWS += float64(s.grantWidth) * float64(ev.at-s.openedAt)
		delete(c.byCircuit, mv.OldID)
		if mv.NewID < 0 {
			delete(c.sessions, sid)
			continue
		}
		s.circuit = mv.NewID
		s.grantWidth = mv.NewWidth
		s.openedAt = ev.at
		c.byCircuit[mv.NewID] = sid
	}
	return nil
}

// retryable reports whether a status is worth a backoff retry.
// Overload, deadline and breaker rejections are transient by
// construction; setup failures can clear as other circuits release or
// reroutes settle.
func retryable(st ctrl.Status) bool {
	switch st {
	case ctrl.StatusOverloaded, ctrl.StatusDeadline, ctrl.StatusBreakerOpen,
		ctrl.StatusNoPath, ctrl.StatusEndpointFailed:
		return true
	}
	return false
}

// submit runs one attempt of the session's pending operation through
// the controller and schedules the consequences.
func (c *campaign) submit(id int, s *session, attempt int, at unit.Seconds) {
	ag := c.agents[s.agent]
	var req ctrl.Request
	if s.phase == phaseRelease {
		req = ctrl.Request{Op: ctrl.OpRelease, Circuit: s.circuit}
	} else {
		req = ctrl.Request{Op: ctrl.OpEstablish, A: s.a, B: s.b, Width: s.width, Deadline: c.cfg.Deadline}
	}
	resp, done := c.srv.Submit(req, at)
	c.attempts++

	switch {
	case resp.Status == ctrl.StatusOK:
		if s.phase == phaseRelease {
			c.goodputWS += float64(s.grantWidth) * float64(done-s.openedAt)
			delete(c.byCircuit, s.circuit)
			delete(c.sessions, id)
			return
		}
		s.phase = phaseOpen
		s.circuit = resp.Circuit
		s.grantWidth = resp.Width
		s.openedAt = done
		c.byCircuit[resp.Circuit] = id
		c.quant.Add(float64(done-s.firstAt) / float64(unit.Microsecond))
		hold := unit.Seconds(ag.r.Exp(float64(c.cfg.MeanHold)))
		c.push(event{at: done + hold, kind: evRelease, session: id})

	case resp.Status == ctrl.StatusUnknownCircuit && s.phase == phaseRelease:
		// The circuit vanished between scheduling and submit (fault
		// path); nothing left to release.
		delete(c.sessions, id)

	case retryable(resp.Status) && attempt < c.cfg.Backoff.MaxRetries:
		c.retries++
		delay := c.cfg.Backoff.Delay(ag.r, attempt)
		c.push(event{at: done + delay, kind: evRetry, session: id, attempt: attempt + 1})

	default:
		// Retries exhausted (or a non-retryable status): the request
		// is abandoned. An abandoned release leaks its circuit — the
		// counter exists to prove it stays at zero.
		if s.phase == phaseRelease {
			c.leaked++
			delete(c.byCircuit, s.circuit)
		} else {
			c.lost++
		}
		delete(c.sessions, id)
	}
}

// result assembles the campaign outcome and surfaces invariant
// violations as an error.
func (c *campaign) result() (*Result, error) {
	st := c.srv.Stats()
	horizon := c.srv.Clock()
	r := &Result{
		Requests:        c.requests,
		Attempts:        c.attempts,
		Served:          st.Served,
		Degraded:        st.Degraded,
		Shed:            st.Shed,
		DeadlineMiss:    st.DeadlineMiss,
		BreakerRejects:  st.BreakerRejects,
		NoPath:          st.NoPath,
		EndpointFailed:  st.EndpointFailed,
		Retries:         c.retries,
		Lost:            c.lost,
		Leaked:          c.leaked,
		BreakerTrips:    c.srv.BreakerTrips(),
		Faults:          st.FaultsApplied,
		Reroutes:        st.Reroutes,
		RerouteDegraded: st.RerouteDegraded,
		CircuitsLost:    st.CircuitsLost,
		GoodputWS:       c.goodputWS,
		Horizon:         horizon,
		Events:          c.processed,
		Violations:      c.srv.Auditor().Count(),
		CacheHits:       st.PlanCacheHits,
		CacheMisses:     st.PlanCacheMisses,
	}
	if c.quant.Count() > 0 {
		r.P50us = c.quant.Query(0.5)
		r.P99us = c.quant.Query(0.99)
	}
	if horizon > 0 {
		r.RPS = float64(c.attempts) / float64(horizon)
	}
	if err := c.srv.Auditor().Err(); err != nil {
		return r, err
	}
	return r, nil
}
