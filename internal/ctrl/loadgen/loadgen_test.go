package loadgen

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/ctrl"
	"lightpath/internal/invariant"
	"lightpath/internal/unit"
)

// smallConfig is a fast campaign that still exercises every mechanism:
// contention for shedding, tight deadlines for misses, chaos for
// breaker traffic and reroutes.
func smallConfig(seed uint64) Config {
	var rates chaos.Rates
	rates.MTBF[chaos.ChipFailure] = 20 * unit.Millisecond
	return Config{
		Seed:             seed,
		Agents:           16,
		ArrivalsPerAgent: 60,
		MeanInterarrival: 150 * unit.Microsecond,
		MeanHold:         unit.Millisecond,
		Width:            2,
		Deadline:         120 * unit.Microsecond,
		Ctrl: ctrl.Config{
			QueueCap:         16,
			EstablishService: 8 * unit.Microsecond,
			Audit:            invariant.Paranoid,
		},
		Backoff: ctrl.Backoff{
			Base: 100 * unit.Microsecond, Factor: 2,
			Cap: 2 * unit.Millisecond, Jitter: 0.5, MaxRetries: 4,
		},
		Rates: rates,
	}
}

// TestRunDeterministic replays the same campaign twice and demands
// identical Results in every field — latencies, goodput and event
// count included.
func TestRunDeterministic(t *testing.T) {
	t.Cleanup(invariant.ResetGlobal)
	a, err := Run(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	invariant.ResetGlobal()
	b, err := Run(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different campaigns:\n  first  %+v\n  second %+v", a, b)
	}
}

// TestRunConservesRequests checks the accounting identity: every fresh
// request either lands (served), is abandoned after retries (lost), or
// dies at an exhausted non-retryable rejection — and nothing leaks.
func TestRunConservesRequests(t *testing.T) {
	t.Cleanup(invariant.ResetGlobal)
	cfg := smallConfig(7)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Agents * cfg.ArrivalsPerAgent; r.Requests != want {
		t.Fatalf("campaign issued %d requests, configured %d", r.Requests, want)
	}
	if r.Attempts < r.Requests {
		t.Fatalf("attempts %d below requests %d", r.Attempts, r.Requests)
	}
	if r.Leaked != 0 {
		t.Fatalf("%d circuits leaked their release", r.Leaked)
	}
	if r.Violations != 0 {
		t.Fatalf("%d invariant violations", r.Violations)
	}
	// The stress config must actually engage its mechanisms, or the
	// campaign proves nothing.
	if r.Shed == 0 || r.DeadlineMiss == 0 || r.Retries == 0 {
		t.Fatalf("campaign too gentle: shed %d, deadline misses %d, retries %d",
			r.Shed, r.DeadlineMiss, r.Retries)
	}
	if r.Faults == 0 || r.BreakerTrips == 0 {
		t.Fatalf("chaos dormant: %d faults, %d breaker trips", r.Faults, r.BreakerTrips)
	}
	if r.P99us < r.P50us || r.P50us <= 0 {
		t.Fatalf("implausible latency quantiles p50=%v p99=%v", r.P50us, r.P99us)
	}
}

// TestKillResumeAnyBoundary stops the campaign at a spread of event
// boundaries, resumes from the checkpoint, and demands the resumed
// Result be identical to the uninterrupted run — kill-at-any-boundary
// crash tolerance.
func TestKillResumeAnyBoundary(t *testing.T) {
	t.Cleanup(invariant.ResetGlobal)
	cfg := smallConfig(1234)
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Events < 1000 {
		t.Fatalf("campaign too short (%d events) to make boundary kills interesting", want.Events)
	}
	for _, stopAt := range []uint64{1, 17, 500, want.Events / 2, want.Events - 1} {
		path := filepath.Join(t.TempDir(), "kill.ckpt")
		opts := CheckpointOptions{Path: path, EveryEvents: 256, StopAfterEvents: stopAt}
		invariant.ResetGlobal()
		if _, err := RunCheckpointed(cfg, opts); !errors.Is(err, ErrStopped) {
			t.Fatalf("stop at %d: %v, want ErrStopped", stopAt, err)
		}
		invariant.ResetGlobal()
		got, err := Resume(cfg, CheckpointOptions{Path: path, EveryEvents: 256})
		if err != nil {
			t.Fatalf("resume from boundary %d: %v", stopAt, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kill at %d diverged from the uninterrupted run:\n  resumed %+v\n  want    %+v",
				stopAt, got, want)
		}
	}
}

// TestResumeRejectsConfigChange pins the digest gate: a checkpoint
// taken under one campaign config must refuse to resume under another.
func TestResumeRejectsConfigChange(t *testing.T) {
	t.Cleanup(invariant.ResetGlobal)
	cfg := smallConfig(5)
	path := filepath.Join(t.TempDir(), "c.ckpt")
	opts := CheckpointOptions{Path: path, EveryEvents: 128, StopAfterEvents: 400}
	if _, err := RunCheckpointed(cfg, opts); !errors.Is(err, ErrStopped) {
		t.Fatalf("seeding checkpoint: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"seed":     func(c *Config) { c.Seed++ },
		"agents":   func(c *Config) { c.Agents-- },
		"width":    func(c *Config) { c.Width = 1 },
		"backoff":  func(c *Config) { c.Backoff.MaxRetries++ },
		"deadline": func(c *Config) { c.Deadline *= 2 },
		"chaos":    func(c *Config) { c.Rates.MTBF[chaos.ChipFailure] = 0 },
	} {
		bad := cfg
		mutate(&bad)
		invariant.ResetGlobal()
		if _, err := Resume(bad, CheckpointOptions{Path: path}); !errors.Is(err, ctrl.ErrConfigMismatch) {
			t.Errorf("%s change resumed anyway: %v", name, err)
		}
	}
}
