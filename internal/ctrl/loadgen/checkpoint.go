package loadgen

import (
	"errors"
	"fmt"
	"sort"

	"lightpath/internal/ctrl"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// This file is the campaign's crash-tolerance layer. A checkpoint is
// one snapshot-envelope file capturing the controller's full state
// (allocator, auditor, breakers, clock, backlog, counters), every
// agent's rng position and arrival cursor, the open sessions, the
// event heap in its raw array layout, and the accumulated statistics.
// Checkpoints land only on event boundaries and the chaos schedule is
// recomputed from the config on resume, so a campaign killed at any
// boundary resumes to a Result byte-identical to the uninterrupted
// run — the property the kill-sweep test asserts.

// checkpointVersion is the current campaign checkpoint format.
const checkpointVersion = 1

// ErrStopped is returned by RunCheckpointed when the campaign halted
// at the StopAfterEvents boundary instead of draining. The kill-sweep
// harness uses it to stop a campaign at a chosen event and Resume it.
var ErrStopped = errors.New("loadgen: campaign stopped at checkpoint boundary")

// CheckpointOptions configures periodic snapshotting of a campaign.
type CheckpointOptions struct {
	// Path is the checkpoint file; the writer keeps the previous good
	// snapshot beside it (Path + ".prev") for torn-write fallback.
	// Empty disables checkpointing.
	Path string
	// EveryEvents is the checkpoint cadence in event boundaries
	// (default 4096).
	EveryEvents uint64
	// StopAfterEvents, when positive, halts the campaign with
	// ErrStopped once that many events have been processed, writing a
	// final checkpoint first if Path is set.
	StopAfterEvents uint64
}

func (o CheckpointOptions) withDefaults() CheckpointOptions {
	if o.EveryEvents == 0 {
		o.EveryEvents = 4096
	}
	return o
}

// RunCheckpointed executes the campaign like Run, additionally writing
// a checkpoint every opts.EveryEvents event boundaries.
func RunCheckpointed(cfg Config, opts CheckpointOptions) (*Result, error) {
	c, err := build(cfg)
	if err != nil {
		return nil, err
	}
	return c.run(opts.withDefaults())
}

// Resume continues a campaign from the checkpoint at opts.Path,
// written by an earlier RunCheckpointed with the same Config. A
// corrupted or torn primary snapshot falls back to the previous good
// one; because the campaign is deterministic, resuming from an older
// boundary replays to the identical Result.
func Resume(cfg Config, opts CheckpointOptions) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Path == "" {
		return nil, errors.New("loadgen: resume needs a checkpoint path")
	}
	version, payload, _, err := snapshot.Load(opts.Path)
	if err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("%w: checkpoint format v%d, this build reads v%d",
			snapshot.ErrCorruptSnapshot, version, checkpointVersion)
	}
	c, err := build(cfg)
	if err != nil {
		return nil, err
	}
	if err := c.restoreState(snapshot.NewDecoder(payload)); err != nil {
		return nil, err
	}
	return c.run(opts)
}

// maybeCheckpoint writes a snapshot when the current event boundary is
// on the cadence, or when the campaign is about to stop there.
func (c *campaign) maybeCheckpoint(opts CheckpointOptions) error {
	if opts.Path == "" {
		return nil
	}
	due := c.processed%opts.EveryEvents == 0
	stopping := opts.StopAfterEvents > 0 && c.processed >= opts.StopAfterEvents
	if !due && !stopping {
		return nil
	}
	return snapshot.Write(opts.Path, checkpointVersion, c.encodeState())
}

// configDigest encodes every campaign field that shapes the event
// stream (the controller's own config digest travels inside its
// nested state). Resume compares byte-for-byte.
func (c *campaign) configDigest() []byte {
	var e snapshot.Encoder
	cfg := c.cfg
	e.U64(cfg.Seed)
	e.Int(cfg.Agents)
	e.Int(cfg.ArrivalsPerAgent)
	snapshot.Unit(&e, cfg.MeanInterarrival)
	snapshot.Unit(&e, cfg.MeanHold)
	e.Int(cfg.Width)
	snapshot.Unit(&e, cfg.Deadline)
	snapshot.Unit(&e, cfg.Backoff.Base)
	e.F64(cfg.Backoff.Factor)
	snapshot.Unit(&e, cfg.Backoff.Cap)
	e.F64(cfg.Backoff.Jitter)
	e.Int(cfg.Backoff.MaxRetries)
	for _, m := range cfg.Rates.MTBF {
		snapshot.Unit(&e, m)
	}
	e.F64(cfg.Rates.WaveguideLossDB)
	return e.Bytes()
}

// encodeState serializes the full campaign at an event boundary.
func (c *campaign) encodeState() []byte {
	var e snapshot.Encoder
	e.String(string(c.configDigest()))
	c.srv.EncodeState(&e)

	e.Len(len(c.agents))
	for _, ag := range c.agents {
		for _, w := range ag.r.State() {
			e.U64(w)
		}
		e.Int(ag.issued)
	}

	e.Len(len(c.sessions))
	ids := make([]int, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := c.sessions[id]
		e.Int(id)
		e.Int(s.agent)
		e.Int(s.a)
		e.Int(s.b)
		e.Int(s.width)
		e.Int(int(s.phase))
		snapshot.Unit(&e, s.firstAt)
		e.Int(s.circuit)
		e.Int(s.grantWidth)
		snapshot.Unit(&e, s.openedAt)
	}

	// The event heap travels in its raw array layout, so the restored
	// heap pops in exactly the original order.
	e.Len(len(c.events))
	for _, ev := range c.events {
		snapshot.Unit(&e, ev.at)
		e.Int(ev.seq)
		e.Int(int(ev.kind))
		e.Int(ev.agent)
		e.Int(ev.session)
		e.Int(ev.attempt)
		e.Int(ev.fault)
	}
	e.Int(c.seq)
	e.U64(c.processed)
	e.Int(c.nextSession)

	c.quant.EncodeState(&e)
	e.Int(c.requests)
	e.Int(c.attempts)
	e.Int(c.retries)
	e.Int(c.lost)
	e.Int(c.leaked)
	e.F64(c.goodputWS)
	return e.Bytes()
}

// restoreState replays a checkpoint payload into a freshly built
// campaign skeleton.
func (c *campaign) restoreState(d *snapshot.Decoder) error {
	if digest := d.String(); d.Err() == nil && digest != string(c.configDigest()) {
		return ctrl.ErrConfigMismatch
	}
	if err := c.srv.RestoreState(d); err != nil {
		return err
	}

	if n := d.Len(); d.Err() == nil && n != len(c.agents) {
		return fmt.Errorf("%w: checkpoint has %d agents, config says %d",
			snapshot.ErrCorruptSnapshot, n, len(c.agents))
	}
	for _, ag := range c.agents {
		var st [4]uint64
		for i := range st {
			st[i] = d.U64()
		}
		ag.r.SetState(st)
		ag.issued = d.Int()
		if d.Err() == nil && (ag.issued < 0 || ag.issued > c.cfg.ArrivalsPerAgent) {
			return fmt.Errorf("%w: agent issued %d of %d arrivals",
				snapshot.ErrCorruptSnapshot, ag.issued, c.cfg.ArrivalsPerAgent)
		}
	}

	n := d.Len()
	for i := 0; i < n && d.Err() == nil; i++ {
		id := d.Int()
		s := &session{
			agent: d.Int(),
			a:     d.Int(),
			b:     d.Int(),
			width: d.Int(),
		}
		ph := d.Int()
		if ph < int(phaseEstablish) || ph > int(phaseRelease) {
			return fmt.Errorf("%w: session %d in unknown phase %d", snapshot.ErrCorruptSnapshot, id, ph)
		}
		s.phase = phase(ph)
		s.firstAt = snapshot.DecodeUnit[unit.Seconds](d)
		s.circuit = d.Int()
		s.grantWidth = d.Int()
		s.openedAt = snapshot.DecodeUnit[unit.Seconds](d)
		if s.agent < 0 || s.agent >= len(c.agents) {
			return fmt.Errorf("%w: session %d owned by unknown agent %d",
				snapshot.ErrCorruptSnapshot, id, s.agent)
		}
		if _, dup := c.sessions[id]; dup {
			return fmt.Errorf("%w: duplicate session %d", snapshot.ErrCorruptSnapshot, id)
		}
		c.sessions[id] = s
		if s.phase != phaseEstablish && s.circuit >= 0 {
			if _, ok := c.srv.Allocator().CircuitByID(s.circuit); !ok {
				return fmt.Errorf("%w: session %d references unknown circuit %d",
					snapshot.ErrCorruptSnapshot, id, s.circuit)
			}
			if _, dup := c.byCircuit[s.circuit]; dup {
				return fmt.Errorf("%w: circuit %d owned by two sessions", snapshot.ErrCorruptSnapshot, s.circuit)
			}
			c.byCircuit[s.circuit] = id
		}
	}

	c.events = c.events[:0]
	n = d.Len()
	for i := 0; i < n && d.Err() == nil; i++ {
		ev := event{
			at:      snapshot.DecodeUnit[unit.Seconds](d),
			seq:     d.Int(),
			kind:    evKind(d.Int()),
			agent:   d.Int(),
			session: d.Int(),
			attempt: d.Int(),
			fault:   d.Int(),
		}
		if ev.kind < evArrival || ev.kind > evFault {
			return fmt.Errorf("%w: event of unknown kind %d", snapshot.ErrCorruptSnapshot, int(ev.kind))
		}
		if ev.kind == evFault && (ev.fault < 0 || ev.fault >= len(c.schedule)) {
			return fmt.Errorf("%w: fault event %d outside schedule of %d",
				snapshot.ErrCorruptSnapshot, ev.fault, len(c.schedule))
		}
		c.events = append(c.events, ev)
	}
	c.seq = d.Int()
	c.processed = d.U64()
	c.nextSession = d.Int()

	if err := c.quant.RestoreState(d); err != nil {
		return err
	}
	c.requests = d.Int()
	c.attempts = d.Int()
	c.retries = d.Int()
	c.lost = d.Int()
	c.leaked = d.Int()
	c.goodputWS = d.F64()
	return d.Finish()
}
