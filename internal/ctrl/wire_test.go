package ctrl

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// TestWireRoundTrip pushes seeded random requests and responses
// through encode -> frame -> read -> decode and demands exact
// reconstruction.
func TestWireRoundTrip(t *testing.T) {
	r := rng.New(99)
	for i := 0; i < 500; i++ {
		req := Request{
			ID:       r.Uint64(),
			Op:       Op(r.Intn(int(numOps))),
			A:        r.Intn(64),
			B:        r.Intn(64),
			Width:    1 + r.Intn(16),
			Circuit:  r.Intn(1000) - 1,
			Deadline: unit.Seconds(r.Float64()) * unit.Millisecond,
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, EncodeRequest(req)); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != req {
			t.Fatalf("request round trip: got %+v, want %+v", got, req)
		}

		resp := Response{
			ID:       r.Uint64(),
			Status:   Status(r.Intn(int(numStatuses))),
			Circuit:  r.Intn(1000),
			Width:    r.Intn(16),
			Degraded: r.Intn(2) == 0,
			Detail:   "detail-string with spaces",
			Queue:    r.Intn(512),
			Circuits: r.Intn(512),
		}
		for j := r.Intn(4); j > 0; j-- {
			resp.Regions = append(resp.Regions, RegionHealth{
				State: BreakerState(r.Intn(3)), Trips: r.Intn(9),
			})
		}
		buf.Reset()
		if err := WriteFrame(&buf, EncodeResponse(resp)); err != nil {
			t.Fatal(err)
		}
		payload, err = ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotR, resp) {
			t.Fatalf("response round trip: got %+v, want %+v", gotR, resp)
		}
	}
}

// TestWireMalformed drives the decoders with hostile inputs: every one
// must come back as a wrapped ErrBadFrame, never a panic and never a
// zero-error success.
func TestWireMalformed(t *testing.T) {
	valid := EncodeRequest(Request{ID: 7, Op: OpEstablish, A: 1, B: 2, Width: 4})
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      valid[:len(valid)-3],
		"trailing junk":  append(append([]byte{}, valid...), 0xaa, 0xbb),
		"unknown op":     EncodeRequest(Request{Op: numOps + 3}),
		"negative op":    EncodeRequest(Request{Op: -2}),
		"random garbage": {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07},
	}
	for name, payload := range cases {
		if _, err := DecodeRequest(payload); !errors.Is(err, ErrBadFrame) {
			t.Errorf("request %s: error %v does not wrap ErrBadFrame", name, err)
		}
	}

	validResp := EncodeResponse(Response{Status: StatusOK, Regions: []RegionHealth{{State: BreakerOpen}}})
	respCases := map[string][]byte{
		"empty":          {},
		"truncated":      validResp[:len(validResp)-2],
		"unknown status": EncodeResponse(Response{Status: numStatuses}),
		"bad breaker":    EncodeResponse(Response{Regions: []RegionHealth{{State: 77}}}),
	}
	for name, payload := range respCases {
		if _, err := DecodeResponse(payload); !errors.Is(err, ErrBadFrame) {
			t.Errorf("response %s: error %v does not wrap ErrBadFrame", name, err)
		}
	}
}

// TestReadFrameHostilePrefix checks the length prefix is validated
// before any allocation, and stream endings are classified: clean EOF
// at a frame boundary is io.EOF, everything else wraps ErrBadFrame.
func TestReadFrameHostilePrefix(t *testing.T) {
	// 4 GiB declared length: must reject from the 4 header bytes alone.
	if _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized prefix: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("clean EOF: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0x01, 0x00})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("torn header: %v", err)
	}
	// Declared 10 payload bytes, delivered 3.
	if _, err := ReadFrame(bytes.NewReader([]byte{0x0a, 0x00, 0x00, 0x00, 1, 2, 3})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("torn payload: %v", err)
	}
}

// TestAppendFramePanicsOversized documents the outbound contract: this
// package never builds frames beyond MaxFrame, so trying is a bug, not
// an error path.
func TestAppendFramePanicsOversized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized outbound frame did not panic")
		}
	}()
	AppendFrame(nil, make([]byte, MaxFrame+1))
}
