package torus

import (
	"errors"
	"fmt"
)

// Slice is a sub-torus allocated to one tenant: "a subset of TPU chips
// allocated to a single cloud tenant. Typically, slices can only be
// allocated in regular shapes, forming tori of specific dimensions"
// (§4.1). A Slice is described by its origin corner and shape inside a
// parent torus.
type Slice struct {
	Name   string
	Origin Coord
	Shape  Shape
}

// Validate checks the slice against the parent torus: matching
// dimensionality, in-bounds origin, extents that fit without wrapping
// past the parent.
func (s *Slice) Validate(t *Torus) error {
	if len(s.Origin) != t.Dims() || len(s.Shape) != t.Dims() {
		return fmt.Errorf("torus: slice %q has %d/%d dims, torus has %d",
			s.Name, len(s.Origin), len(s.Shape), t.Dims())
	}
	if err := s.Shape.Validate(); err != nil {
		return err
	}
	for d := range s.Origin {
		if s.Origin[d] < 0 || s.Origin[d] >= t.Extent(d) {
			return fmt.Errorf("torus: slice %q origin %v out of bounds", s.Name, s.Origin)
		}
		if s.Shape[d] > t.Extent(d) {
			return fmt.Errorf("torus: slice %q extent %d exceeds torus extent %d in dim %d",
				s.Name, s.Shape[d], t.Extent(d), d)
		}
	}
	return nil
}

// Size returns the number of chips in the slice.
func (s *Slice) Size() int { return s.Shape.Size() }

// Contains reports whether the chip at coordinate c belongs to the
// slice. The slice may wrap around the parent torus.
func (s *Slice) Contains(t *Torus, c Coord) bool {
	for d := range c {
		e := t.Extent(d)
		rel := (c[d] - s.Origin[d] + e) % e
		if rel >= s.Shape[d] {
			return false
		}
	}
	return true
}

// ContainsIndex reports whether chip index i belongs to the slice.
func (s *Slice) ContainsIndex(t *Torus, i int) bool {
	return s.Contains(t, t.Coord(i))
}

// Chips returns the chip indices of the slice in row-major order of
// the slice's local coordinates.
func (s *Slice) Chips(t *Torus) []int {
	chips := make([]int, 0, s.Size())
	local := make(Coord, len(s.Shape))
	abs := make(Coord, len(s.Shape))
	for {
		for d := range local {
			abs[d] = s.Origin[d] + local[d]
		}
		chips = append(chips, t.Index(abs))
		// Odometer increment over the slice shape.
		d := len(local) - 1
		for ; d >= 0; d-- {
			local[d]++
			if local[d] < s.Shape[d] {
				break
			}
			local[d] = 0
		}
		if d < 0 {
			return chips
		}
	}
}

// ChipAt returns the chip index at the given local coordinate of the
// slice.
func (s *Slice) ChipAt(t *Torus, local Coord) int {
	abs := make(Coord, len(local))
	for d := range local {
		if local[d] < 0 || local[d] >= s.Shape[d] {
			panic(fmt.Sprintf("torus: local coord %v outside slice shape %v", local, s.Shape))
		}
		abs[d] = s.Origin[d] + local[d]
	}
	return t.Index(abs)
}

// SpansDim reports whether the slice covers the parent torus's full
// extent along dimension d, which is the condition under which its
// dimension-d rings can use the physical wrap-around without touching
// other tenants.
func (s *Slice) SpansDim(t *Torus, d int) bool {
	return s.Shape[d] == t.Extent(d)
}

// ErrNoRing reports that a slice cannot realize a congestion-free ring
// along the requested dimension on the electrical torus.
var ErrNoRing = errors.New("torus: no realizable ring along dimension")

// RingLinks returns the directed links used by the slice's
// dimension-d rings: one ring per combination of the other slice
// coordinates. On a direct-connect electrical torus a ring is
// realizable within the slice only if:
//
//   - the slice spans the full physical dimension (the ring is the
//     physical line's cycle), or
//   - the slice has extent 2 in d (the "ring" is the two directions of
//     one cable), or
//   - the slice has extent 1 in d (no ring needed; no links).
//
// Any intermediate extent would need to close its cycle through chips
// outside the slice — the congestion the paper describes — so it
// returns ErrNoRing. (TPUv4 sidesteps this by only allocating slice
// shapes whose extents divide the rack this way; see §4.1.)
func (s *Slice) RingLinks(t *Torus, d int) ([]Link, error) {
	extent := s.Shape[d]
	switch {
	case extent == 1:
		return nil, nil
	case extent == 2, s.SpansDim(t, d):
		// Realizable: enumerate one ring per orthogonal position.
	default:
		return nil, fmt.Errorf("%w %d: slice %q extent %d < torus extent %d",
			ErrNoRing, d, s.Name, extent, t.Extent(d))
	}

	var links []Link
	orth := s.orthogonalPositions(d)
	for _, base := range orth {
		if s.SpansDim(t, d) {
			links = append(links, t.RingLinksForLine(s.ChipAt(t, base), d)...)
			continue
		}
		// Extent 2: both directions of the single cable between the
		// two chips.
		a := base.Clone()
		b := base.Clone()
		a[d] = 0
		b[d] = 1
		ca, cb := s.ChipAt(t, a), s.ChipAt(t, b)
		links = append(links, Link{From: ca, To: cb}, Link{From: cb, To: ca})
	}
	return links, nil
}

// Rings returns the ordered chip rings along dimension d, one per
// orthogonal position, under the same realizability rules as
// RingLinks. Extent-1 dimensions yield no rings.
func (s *Slice) Rings(t *Torus, d int) ([][]int, error) {
	if _, err := s.RingLinks(t, d); err != nil {
		return nil, err
	}
	if s.Shape[d] == 1 {
		return nil, nil
	}
	var rings [][]int
	for _, base := range s.orthogonalPositions(d) {
		ring := make([]int, s.Shape[d])
		c := base.Clone()
		for v := 0; v < s.Shape[d]; v++ {
			c[d] = v
			ring[v] = s.ChipAt(t, c)
		}
		rings = append(rings, ring)
	}
	return rings, nil
}

// orthogonalPositions enumerates local coordinates with dimension d
// fixed at 0, one per ring along d.
func (s *Slice) orthogonalPositions(d int) []Coord {
	n := s.Size() / s.Shape[d]
	out := make([]Coord, 0, n)
	local := make(Coord, len(s.Shape))
	for {
		if local[d] == 0 {
			out = append(out, local.Clone())
		}
		i := len(local) - 1
		for ; i >= 0; i-- {
			local[i]++
			if local[i] < s.Shape[i] {
				break
			}
			local[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// SnakeRing returns a Hamiltonian cycle over all chips of the slice in
// which consecutive chips are torus-adjacent — the single ring over
// which a small slice like the paper's Slice-1 (4x2x1) executes its
// collective (Table 1's 7-step ring over 8 chips).
//
// The construction is the standard boustrophedon cycle on the slice's
// effective 2-D grid, which exists when the slice has at most two
// dimensions of extent > 1 and at least one of them is even. Richer
// shapes return an error; the paper's sub-rack slices all satisfy the
// condition.
func (s *Slice) SnakeRing(t *Torus) ([]int, error) {
	// Identify the non-trivial dimensions.
	var dims []int
	for d, e := range s.Shape {
		if e > 1 {
			dims = append(dims, d)
		}
	}
	switch len(dims) {
	case 0:
		return nil, fmt.Errorf("torus: slice %q has a single chip, no ring", s.Name)
	case 1:
		d := dims[0]
		if s.Shape[d] != 2 && !s.SpansDim(t, d) {
			return nil, fmt.Errorf("%w %d: 1-D slice %q cannot close its ring", ErrNoRing, d, s.Name)
		}
		ring := make([]int, s.Shape[d])
		c := make(Coord, len(s.Shape))
		for v := range ring {
			c[d] = v
			ring[v] = s.ChipAt(t, c)
		}
		return ring, nil
	case 2:
		// Arrange so dimension b (the "rows") has even extent.
		a, b := dims[0], dims[1]
		if s.Shape[b]%2 != 0 {
			a, b = b, a
		}
		if s.Shape[b]%2 != 0 {
			return nil, fmt.Errorf("torus: slice %q (%v) has no grid Hamiltonian cycle (both extents odd)", s.Name, s.Shape)
		}
		return s.boustrophedon(t, a, b), nil
	default:
		return nil, fmt.Errorf("torus: slice %q has %d non-trivial dims; snake ring supports at most 2", s.Name, len(dims))
	}
}

// boustrophedon builds the comb-shaped Hamiltonian cycle on the (a, b)
// grid of the slice, where extent(b) is even: walk row 0 of b across
// all of a; snake back through rows 1..B-1 over a in [1, A-1]; return
// up the a=0 rail.
func (s *Slice) boustrophedon(t *Torus, a, b int) []int {
	A, B := s.Shape[a], s.Shape[b]
	cycle := make([]int, 0, A*B)
	c := make(Coord, len(s.Shape))
	at := func(av, bv int) int {
		c[a], c[b] = av, bv
		return s.ChipAt(t, c)
	}
	if A == 1 {
		// Degenerate: pure 1-D even ring along b (extent 2 or full).
		for bv := 0; bv < B; bv++ {
			cycle = append(cycle, at(0, bv))
		}
		return cycle
	}
	// Row b=0, a from 0 to A-1.
	for av := 0; av < A; av++ {
		cycle = append(cycle, at(av, 0))
	}
	// Rows b=1..B-1 snake over a in [1, A-1]; rows alternate direction
	// starting right-to-left. B even ensures the final row ends at a=1.
	for bv := 1; bv < B; bv++ {
		if bv%2 == 1 {
			for av := A - 1; av >= 1; av-- {
				cycle = append(cycle, at(av, bv))
			}
		} else {
			for av := 1; av <= A-1; av++ {
				cycle = append(cycle, at(av, bv))
			}
		}
	}
	// Up the a=0 rail from b=B-1 back toward b=1; the cycle closes
	// from (0,1) to the start (0,0).
	for bv := B - 1; bv >= 1; bv-- {
		cycle = append(cycle, at(0, bv))
	}
	return cycle
}

// RingToLinks converts an ordered chip cycle into its directed links,
// including the closing link from the last chip back to the first.
func RingToLinks(ring []int) []Link {
	if len(ring) < 2 {
		return nil
	}
	links := make([]Link, len(ring))
	for i := range ring {
		links[i] = Link{From: ring[i], To: ring[(i+1)%len(ring)]}
	}
	return links
}
