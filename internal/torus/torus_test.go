package torus

import (
	"testing"
	"testing/quick"
)

func TestShapeBasics(t *testing.T) {
	s := Shape{4, 4, 4}
	if s.Size() != 64 {
		t.Fatalf("size = %d, want 64", s.Size())
	}
	if s.Dims() != 3 {
		t.Fatalf("dims = %d, want 3", s.Dims())
	}
	if s.String() != "4x4x4" {
		t.Fatalf("string = %q, want 4x4x4", s.String())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if err := (Shape{}).Validate(); err == nil {
		t.Fatal("empty shape should not validate")
	}
	if err := (Shape{4, 0}).Validate(); err == nil {
		t.Fatal("zero extent should not validate")
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 4 {
		t.Fatal("clone aliases original")
	}
	if !s.Equal(Shape{4, 4, 4}) || s.Equal(Shape{4, 4}) || s.Equal(Shape{4, 4, 5}) {
		t.Fatal("Equal misbehaves")
	}
}

func TestCoordBasics(t *testing.T) {
	c := Coord{1, 2, 3}
	if c.String() != "(1,2,3)" {
		t.Fatalf("string = %q", c.String())
	}
	o := c.Clone()
	o[0] = 9
	if c[0] != 1 {
		t.Fatal("clone aliases original")
	}
	if !c.Equal(Coord{1, 2, 3}) || c.Equal(Coord{1, 2}) || c.Equal(Coord{1, 2, 4}) {
		t.Fatal("Equal misbehaves")
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	tor := New(Shape{4, 3, 5})
	for i := 0; i < tor.Size(); i++ {
		if got := tor.Index(tor.Coord(i)); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, tor.Coord(i), got)
		}
	}
}

func TestIndexWraps(t *testing.T) {
	tor := New(Shape{4, 4, 4})
	if got := tor.Index(Coord{-1, 0, 0}); got != tor.Index(Coord{3, 0, 0}) {
		t.Fatalf("negative wrap: %d", got)
	}
	if got := tor.Index(Coord{4, 0, 0}); got != tor.Index(Coord{0, 0, 0}) {
		t.Fatalf("positive wrap: %d", got)
	}
	if got := tor.Index(Coord{9, 0, 0}); got != tor.Index(Coord{1, 0, 0}) {
		t.Fatalf("multi-wrap: %d", got)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	// DESIGN.md invariant: neighbor relations are symmetric.
	tor := New(Shape{4, 3, 2})
	for i := 0; i < tor.Size(); i++ {
		for d := 0; d < tor.Dims(); d++ {
			n := tor.Neighbor(i, d, +1)
			back := tor.Neighbor(n, d, -1)
			if back != i {
				t.Fatalf("neighbor not symmetric: %d +%d -> %d -%d -> %d", i, d, n, d, back)
			}
		}
	}
}

func TestNeighborWrapsAround(t *testing.T) {
	tor := New(Shape{4})
	last := tor.Index(Coord{3})
	if got := tor.Neighbor(last, 0, +1); got != tor.Index(Coord{0}) {
		t.Fatalf("wrap +1 from end = %d", got)
	}
	first := tor.Index(Coord{0})
	if got := tor.Neighbor(first, 0, -1); got != last {
		t.Fatalf("wrap -1 from start = %d", got)
	}
}

func TestLinkDim(t *testing.T) {
	tor := New(Shape{4, 4, 4})
	a := tor.Index(Coord{0, 0, 0})
	cases := []struct {
		to   Coord
		want int
	}{
		{Coord{1, 0, 0}, 0},
		{Coord{3, 0, 0}, 0}, // wrap adjacency
		{Coord{0, 1, 0}, 1},
		{Coord{0, 0, 3}, 2},
		{Coord{2, 0, 0}, -1}, // distance 2
		{Coord{1, 1, 0}, -1}, // diagonal
		{Coord{0, 0, 0}, -1}, // self
	}
	for _, c := range cases {
		l := Link{From: a, To: tor.Index(c.to)}
		if got := tor.LinkDim(l); got != c.want {
			t.Errorf("LinkDim(0 -> %v) = %d, want %d", c.to, got, c.want)
		}
	}
}

func TestLinkReverseAndString(t *testing.T) {
	l := Link{From: 3, To: 7}
	if l.Reverse() != (Link{From: 7, To: 3}) {
		t.Fatal("reverse wrong")
	}
	if l.String() != "3->7" {
		t.Fatalf("string = %q", l.String())
	}
}

func TestAllLinksCount(t *testing.T) {
	// 4x4x4: each chip has 6 ports (+/- per dimension) -> 64*6 = 384
	// directed links, each emitted exactly once.
	tor := New(Shape{4, 4, 4})
	links := tor.AllLinks()
	if len(links) != 384 {
		t.Fatalf("links = %d, want 384", len(links))
	}
	set := make(map[Link]bool, len(links))
	for _, l := range links {
		if set[l] {
			t.Fatalf("duplicate link %v", l)
		}
		set[l] = true
	}
	for _, l := range links {
		if !set[l.Reverse()] {
			t.Fatalf("reverse of %v missing", l)
		}
	}
}

func TestAllLinksExtent2(t *testing.T) {
	// Extent-2 dimension: exactly two directed links per pair, not four.
	tor := New(Shape{2})
	links := tor.AllLinks()
	if len(links) != 2 {
		t.Fatalf("links on a 2-torus = %v, want exactly [0->1, 1->0]", links)
	}
}

func TestAllLinksExtent1(t *testing.T) {
	tor := New(Shape{1, 4})
	for _, l := range tor.AllLinks() {
		if tor.LinkDim(l) == 0 {
			t.Fatalf("extent-1 dimension produced link %v", l)
		}
	}
}

func TestLine(t *testing.T) {
	tor := New(Shape{4, 4, 4})
	chip := tor.Index(Coord{2, 1, 3})
	line := tor.Line(chip, 0)
	if len(line) != 4 {
		t.Fatalf("line length = %d", len(line))
	}
	for v, c := range line {
		want := tor.Index(Coord{v, 1, 3})
		if c != want {
			t.Fatalf("line[%d] = %d, want %d", v, c, want)
		}
	}
}

func TestRingLinksForLine(t *testing.T) {
	tor := New(Shape{4, 2, 1})
	// Dim 0, extent 4: a closed directed 4-cycle.
	links := tor.RingLinksForLine(0, 0)
	if len(links) != 4 {
		t.Fatalf("dim-0 ring links = %d, want 4", len(links))
	}
	// The cycle closes: every chip appears once as From and once as To.
	from := map[int]int{}
	to := map[int]int{}
	for _, l := range links {
		from[l.From]++
		to[l.To]++
	}
	for c, n := range from {
		if n != 1 || to[c] != 1 {
			t.Fatalf("chip %d appears from=%d to=%d", c, n, to[c])
		}
	}
	// Dim 1, extent 2: exactly the two opposite directed links.
	links = tor.RingLinksForLine(0, 1)
	if len(links) != 2 || links[0].Reverse() != links[1] {
		t.Fatalf("dim-1 ring links = %v", links)
	}
	// Dim 2, extent 1: nothing.
	if links = tor.RingLinksForLine(0, 2); links != nil {
		t.Fatalf("dim-2 ring links = %v, want none", links)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad shape did not panic")
		}
	}()
	New(Shape{0})
}

func TestCoordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Coord(-1) did not panic")
		}
	}()
	New(Shape{4}).Coord(-1)
}

func TestIndexPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index with wrong dims did not panic")
		}
	}()
	New(Shape{4, 4}).Index(Coord{1})
}

// Property: for random shapes, every chip has exactly 2 neighbors per
// dimension of extent >= 3, 1 distinct neighbor for extent 2, and the
// index<->coord mapping is a bijection.
func TestTorusProperties(t *testing.T) {
	f := func(a, b, c uint8) bool {
		shape := Shape{int(a%4) + 1, int(b%4) + 1, int(c%4) + 1}
		tor := New(shape)
		seen := make(map[int]bool)
		for i := 0; i < tor.Size(); i++ {
			if seen[i] {
				return false
			}
			seen[i] = true
			if tor.Index(tor.Coord(i)) != i {
				return false
			}
		}
		return len(seen) == shape.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDORPath(t *testing.T) {
	tor := New(Shape{4, 4, 4})
	from := tor.Index(Coord{0, 0, 0})
	to := tor.Index(Coord{2, 3, 1})
	path := tor.DORPath(from, to)
	// Dim 0: 2 steps forward; dim 1: 3 -> shorter backward (1 step);
	// dim 2: 1 step. Total 4 links.
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4: %v", len(path), path)
	}
	// The path is connected from 'from' to 'to' over adjacent links.
	at := from
	for _, l := range path {
		if l.From != at {
			t.Fatalf("path disconnected at %v", l)
		}
		if tor.LinkDim(l) < 0 {
			t.Fatalf("path uses non-adjacent link %v", l)
		}
		at = l.To
	}
	if at != to {
		t.Fatalf("path ends at %d, want %d", at, to)
	}
	// Self-path is empty.
	if p := tor.DORPath(from, from); len(p) != 0 {
		t.Fatalf("self path = %v", p)
	}
}

func TestDORPathTakesShorterWrap(t *testing.T) {
	tor := New(Shape{4})
	// 0 -> 3 is one step backward via the wrap, not three forward.
	path := tor.DORPath(0, 3)
	if len(path) != 1 {
		t.Fatalf("wrap path = %v, want single link", path)
	}
	if path[0] != (Link{From: 0, To: 3}) {
		t.Fatalf("wrap link = %v", path[0])
	}
}

// Property: DOR paths are minimal per dimension: length equals the sum
// of per-dimension ring distances.
func TestDORPathMinimalProperty(t *testing.T) {
	tor := New(Shape{4, 3, 5})
	f := func(a, b uint16) bool {
		from := int(a) % tor.Size()
		to := int(b) % tor.Size()
		path := tor.DORPath(from, to)
		cf, ct := tor.Coord(from), tor.Coord(to)
		want := 0
		for d := 0; d < tor.Dims(); d++ {
			e := tor.Extent(d)
			diff := ((ct[d]-cf[d])%e + e) % e
			if diff > e-diff {
				diff = e - diff
			}
			want += diff
		}
		return len(path) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
