package torus

import (
	"testing"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Shape{4, 4, 4}, 0); err == nil {
		t.Fatal("zero racks accepted")
	}
	if _, err := NewCluster(Shape{0}, 2); err == nil {
		t.Fatal("bad rack shape accepted")
	}
}

func TestTPUv4ClusterScale(t *testing.T) {
	// Paper §4: 64 racks of 4x4x4 = 4096 chips, 16 servers x 4 TPUs
	// per rack.
	c := NewTPUv4Cluster()
	if c.Size() != 4096 {
		t.Fatalf("cluster size = %d, want 4096", c.Size())
	}
	if c.NumRacks() != 64 || c.RackSize() != 64 {
		t.Fatalf("racks = %d x %d chips", c.NumRacks(), c.RackSize())
	}
	servers := map[int]int{}
	for chip := 0; chip < c.RackSize(); chip++ {
		servers[c.ServerOf(chip)]++
	}
	if len(servers) != 16 {
		t.Fatalf("servers per rack = %d, want 16", len(servers))
	}
	for s, n := range servers {
		if n != ChipsPerServer {
			t.Fatalf("server %d has %d chips, want %d", s, n, ChipsPerServer)
		}
	}
}

func TestServerChips(t *testing.T) {
	c := NewTPUv4Cluster()
	chip := c.Rack().Index(Coord{1, 1, 2})
	server := c.ServerOf(chip)
	chips := c.ServerChips(server)
	if len(chips) != ChipsPerServer {
		t.Fatalf("server chips = %v", chips)
	}
	found := false
	for _, ch := range chips {
		if ch == chip {
			found = true
		}
		if c.ServerOf(ch) != server {
			t.Fatalf("chip %d in wrong server", ch)
		}
	}
	if !found {
		t.Fatal("ServerChips does not include the probe chip")
	}
}

func TestGlobalIDSplitRoundTrip(t *testing.T) {
	c, _ := NewCluster(Shape{4, 4, 4}, 4)
	for g := 0; g < c.Size(); g++ {
		rack, chip := c.Split(g)
		if back := c.GlobalID(rack, chip); back != g {
			t.Fatalf("round trip %d -> (%d,%d) -> %d", g, rack, chip, back)
		}
	}
}

func TestGlobalIDPanics(t *testing.T) {
	c, _ := NewCluster(Shape{4}, 2)
	for name, fn := range map[string]func(){
		"bad rack":   func() { c.GlobalID(2, 0) },
		"bad chip":   func() { c.GlobalID(0, 4) },
		"bad global": func() { c.Split(8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStandaloneRackWrapsToItself(t *testing.T) {
	c, _ := NewCluster(Shape{4, 4, 4}, 2)
	tor := c.Rack()
	edge := c.GlobalID(0, tor.Index(Coord{0, 0, 3}))
	n := c.NeighborGlobal(edge, 2, +1)
	if n != c.GlobalID(0, tor.Index(Coord{0, 0, 0})) {
		t.Fatalf("standalone wrap = %d", n)
	}
}

func TestJoinTwoRacksAlongZ(t *testing.T) {
	// Figure 6b's setting: two racks spliced along Z through the OCS.
	c, _ := NewCluster(Shape{4, 4, 4}, 2)
	if err := c.Join(2, []int{0, 1}); err != nil {
		t.Fatalf("join: %v", err)
	}
	tor := c.Rack()
	// Rack 0's +Z face now reaches rack 1's -Z face.
	a := c.GlobalID(0, tor.Index(Coord{1, 2, 3}))
	b := c.GlobalID(1, tor.Index(Coord{1, 2, 0}))
	if got := c.NeighborGlobal(a, 2, +1); got != b {
		t.Fatalf("spliced +Z neighbor = %d, want %d", got, b)
	}
	// And symmetrically back.
	if got := c.NeighborGlobal(b, 2, -1); got != a {
		t.Fatalf("spliced -Z neighbor = %d, want %d", got, a)
	}
	// Rack 1's +Z face wraps around to rack 0's -Z face (two-rack torus).
	top := c.GlobalID(1, tor.Index(Coord{1, 2, 3}))
	bottom := c.GlobalID(0, tor.Index(Coord{1, 2, 0}))
	if got := c.NeighborGlobal(top, 2, +1); got != bottom {
		t.Fatalf("two-rack wrap = %d, want %d", got, bottom)
	}
	// X and Y stay intra-rack.
	if got := c.NeighborGlobal(a, 0, +1); c.InterRack(Link{From: a, To: got}) {
		t.Fatal("X neighbor crossed racks")
	}
	if !c.InterRack(Link{From: a, To: b}) {
		t.Fatal("Z splice not reported inter-rack")
	}
}

func TestJoinValidation(t *testing.T) {
	c, _ := NewCluster(Shape{4, 4, 4}, 4)
	if err := c.Join(3, []int{0, 1}); err == nil {
		t.Error("bad dimension accepted")
	}
	if err := c.Join(2, []int{0}); err == nil {
		t.Error("single-rack join accepted")
	}
	if err := c.Join(2, []int{0, 0}); err == nil {
		t.Error("duplicate rack accepted")
	}
	if err := c.Join(2, []int{0, 9}); err == nil {
		t.Error("out-of-range rack accepted")
	}
	if err := c.Join(2, []int{0, 1}); err != nil {
		t.Fatalf("valid join rejected: %v", err)
	}
	if err := c.Join(2, []int{1, 2}); err == nil {
		t.Error("re-join of already-joined rack accepted")
	}
}

func TestIsolate(t *testing.T) {
	c, _ := NewCluster(Shape{4, 4, 4}, 3)
	if err := c.Join(2, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	c.Isolate(2, 1)
	tor := c.Rack()
	// Rack 1 wraps to itself again.
	edge := c.GlobalID(1, tor.Index(Coord{0, 0, 3}))
	if got := c.NeighborGlobal(edge, 2, +1); got != c.GlobalID(1, tor.Index(Coord{0, 0, 0})) {
		t.Fatalf("isolated rack does not self-wrap: %d", got)
	}
	// Racks 0 and 2 are spliced to each other.
	a := c.GlobalID(0, tor.Index(Coord{0, 0, 3}))
	b := c.GlobalID(2, tor.Index(Coord{0, 0, 0}))
	if got := c.NeighborGlobal(a, 2, +1); got != b {
		t.Fatalf("remaining racks not respliced: %d, want %d", got, b)
	}
	// Isolating an already standalone rack is a no-op.
	c.Isolate(2, 1)
}

func TestIsolateTwoRackLoop(t *testing.T) {
	c, _ := NewCluster(Shape{4, 4, 4}, 2)
	if err := c.Join(2, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	c.Isolate(2, 0)
	tor := c.Rack()
	for r := 0; r < 2; r++ {
		edge := c.GlobalID(r, tor.Index(Coord{0, 0, 3}))
		if got := c.NeighborGlobal(edge, 2, +1); got != c.GlobalID(r, tor.Index(Coord{0, 0, 0})) {
			t.Fatalf("rack %d not standalone after isolate", r)
		}
	}
}

func TestGlobalNeighborsDegree(t *testing.T) {
	c, _ := NewCluster(Shape{4, 4, 4}, 2)
	g := c.GlobalID(0, c.Rack().Index(Coord{1, 1, 1}))
	if n := len(c.GlobalNeighbors(g)); n != 6 {
		t.Fatalf("interior chip degree = %d, want 6", n)
	}
}

func TestGlobalLinkDim(t *testing.T) {
	c, _ := NewCluster(Shape{4, 4, 4}, 2)
	if err := c.Join(2, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	tor := c.Rack()
	a := c.GlobalID(0, tor.Index(Coord{1, 2, 3}))
	b := c.GlobalID(1, tor.Index(Coord{1, 2, 0}))
	if got := c.GlobalLinkDim(Link{From: a, To: b}); got != 2 {
		t.Fatalf("splice link dim = %d, want 2", got)
	}
	far := c.GlobalID(1, tor.Index(Coord{1, 2, 1}))
	if got := c.GlobalLinkDim(Link{From: a, To: far}); got != -1 {
		t.Fatalf("non-adjacent dim = %d, want -1", got)
	}
}
