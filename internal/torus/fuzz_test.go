package torus

import "testing"

// FuzzIndexCoord checks the index/coordinate bijection and neighbor
// symmetry for arbitrary shapes.
func FuzzIndexCoord(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(4), uint16(17))
	f.Add(uint8(1), uint8(2), uint8(5), uint16(0))
	f.Fuzz(func(t *testing.T, a, b, c uint8, probe uint16) {
		shape := Shape{int(a%6) + 1, int(b%6) + 1, int(c%6) + 1}
		tor := New(shape)
		i := int(probe) % tor.Size()
		if tor.Index(tor.Coord(i)) != i {
			t.Fatalf("bijection broken at %d", i)
		}
		for d := 0; d < tor.Dims(); d++ {
			n := tor.Neighbor(i, d, +1)
			if tor.Neighbor(n, d, -1) != i {
				t.Fatalf("neighbor asymmetry at %d dim %d", i, d)
			}
		}
	})
}

// FuzzDORPath checks dimension-ordered routes are connected, minimal
// and terminate.
func FuzzDORPath(f *testing.F) {
	f.Add(uint16(0), uint16(63))
	f.Add(uint16(5), uint16(5))
	f.Fuzz(func(t *testing.T, fromRaw, toRaw uint16) {
		tor := New(Shape{4, 4, 4})
		from := int(fromRaw) % tor.Size()
		to := int(toRaw) % tor.Size()
		path := tor.DORPath(from, to)
		at := from
		for _, l := range path {
			if l.From != at || tor.LinkDim(l) < 0 {
				t.Fatalf("broken path at %v", l)
			}
			at = l.To
		}
		if at != to {
			t.Fatalf("path ends at %d, want %d", at, to)
		}
		if len(path) > 6 { // 4x4x4: at most 2 hops per dimension
			t.Fatalf("path too long: %d", len(path))
		}
	})
}
