package torus

import (
	"errors"
	"testing"
)

// rack returns the paper's 4x4x4 TPU rack.
func rack() *Torus { return New(Shape{4, 4, 4}) }

func TestSliceValidate(t *testing.T) {
	tor := rack()
	good := &Slice{Name: "ok", Origin: Coord{0, 0, 3}, Shape: Shape{4, 2, 1}}
	if err := good.Validate(tor); err != nil {
		t.Fatalf("valid slice rejected: %v", err)
	}
	bad := []*Slice{
		{Name: "dims", Origin: Coord{0, 0}, Shape: Shape{4, 2, 1}},
		{Name: "origin", Origin: Coord{0, 0, 4}, Shape: Shape{1, 1, 1}},
		{Name: "extent", Origin: Coord{0, 0, 0}, Shape: Shape{5, 1, 1}},
		{Name: "zero", Origin: Coord{0, 0, 0}, Shape: Shape{0, 1, 1}},
	}
	for _, s := range bad {
		if err := s.Validate(tor); err == nil {
			t.Errorf("slice %q should not validate", s.Name)
		}
	}
}

func TestSliceChips(t *testing.T) {
	tor := rack()
	s := &Slice{Name: "s1", Origin: Coord{0, 0, 3}, Shape: Shape{4, 2, 1}}
	chips := s.Chips(tor)
	if len(chips) != 8 {
		t.Fatalf("chips = %d, want 8", len(chips))
	}
	seen := map[int]bool{}
	for _, c := range chips {
		if seen[c] {
			t.Fatalf("duplicate chip %d", c)
		}
		seen[c] = true
		if !s.ContainsIndex(tor, c) {
			t.Fatalf("chip %d not contained in its own slice", c)
		}
	}
	// A chip outside.
	if s.ContainsIndex(tor, tor.Index(Coord{0, 2, 3})) {
		t.Fatal("slice contains chip outside its shape")
	}
	if s.Size() != 8 {
		t.Fatalf("size = %d", s.Size())
	}
}

func TestSliceContainsWraps(t *testing.T) {
	tor := rack()
	// Slice wrapping around dimension 0: origin x=3, extent 2 covers
	// x in {3, 0}.
	s := &Slice{Name: "wrap", Origin: Coord{3, 0, 0}, Shape: Shape{2, 1, 1}}
	if !s.Contains(tor, Coord{3, 0, 0}) || !s.Contains(tor, Coord{0, 0, 0}) {
		t.Fatal("wrapping slice does not contain its chips")
	}
	if s.Contains(tor, Coord{1, 0, 0}) || s.Contains(tor, Coord{2, 0, 0}) {
		t.Fatal("wrapping slice contains outside chips")
	}
}

func TestChipAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ChipAt out of slice did not panic")
		}
	}()
	s := &Slice{Origin: Coord{0, 0, 0}, Shape: Shape{2, 2, 1}}
	s.ChipAt(rack(), Coord{2, 0, 0})
}

func TestSpansDim(t *testing.T) {
	tor := rack()
	s := &Slice{Origin: Coord{0, 0, 0}, Shape: Shape{4, 2, 1}}
	if !s.SpansDim(tor, 0) {
		t.Fatal("extent-4 dim should span")
	}
	if s.SpansDim(tor, 1) || s.SpansDim(tor, 2) {
		t.Fatal("partial dims should not span")
	}
}

func TestRingLinksFullDim(t *testing.T) {
	tor := rack()
	s := &Slice{Name: "s3", Origin: Coord{0, 0, 2}, Shape: Shape{4, 4, 1}}
	links, err := s.RingLinks(tor, 0)
	if err != nil {
		t.Fatalf("RingLinks: %v", err)
	}
	// 4 rings (one per y) of 4 links each.
	if len(links) != 16 {
		t.Fatalf("links = %d, want 16", len(links))
	}
	// All links stay inside the slice and run along dim 0.
	for _, l := range links {
		if !s.ContainsIndex(tor, l.From) || !s.ContainsIndex(tor, l.To) {
			t.Fatalf("ring link %v leaves the slice", l)
		}
		if tor.LinkDim(l) != 0 {
			t.Fatalf("ring link %v not along dim 0", l)
		}
	}
}

func TestRingLinksExtent2(t *testing.T) {
	tor := rack()
	s := &Slice{Name: "s1", Origin: Coord{0, 0, 3}, Shape: Shape{4, 2, 1}}
	links, err := s.RingLinks(tor, 1)
	if err != nil {
		t.Fatalf("RingLinks extent 2: %v", err)
	}
	// 4 pairs (one per x) of 2 directed links.
	if len(links) != 8 {
		t.Fatalf("links = %d, want 8", len(links))
	}
	use := LinkUse{}
	use.Add(links)
	if use.MaxCongestion() != 1 {
		t.Fatalf("extent-2 rings self-congest: %v", use.CongestedLinks())
	}
}

func TestRingLinksExtent1(t *testing.T) {
	tor := rack()
	s := &Slice{Name: "s3", Origin: Coord{0, 0, 2}, Shape: Shape{4, 4, 1}}
	links, err := s.RingLinks(tor, 2)
	if err != nil || links != nil {
		t.Fatalf("extent-1 = (%v, %v), want (nil, nil)", links, err)
	}
}

func TestRingLinksUnrealizable(t *testing.T) {
	tor := rack()
	s := &Slice{Name: "bad", Origin: Coord{0, 0, 0}, Shape: Shape{3, 1, 1}}
	if _, err := s.RingLinks(tor, 0); !errors.Is(err, ErrNoRing) {
		t.Fatalf("extent 3 of 4: err = %v, want ErrNoRing", err)
	}
}

func TestRings(t *testing.T) {
	tor := rack()
	s := &Slice{Name: "s3", Origin: Coord{0, 0, 2}, Shape: Shape{4, 4, 1}}
	rings, err := s.Rings(tor, 1)
	if err != nil {
		t.Fatalf("Rings: %v", err)
	}
	if len(rings) != 4 {
		t.Fatalf("rings = %d, want 4 (one per x)", len(rings))
	}
	for _, ring := range rings {
		if len(ring) != 4 {
			t.Fatalf("ring size = %d, want 4", len(ring))
		}
		for i := range ring {
			l := Link{From: ring[i], To: ring[(i+1)%len(ring)]}
			if tor.LinkDim(l) != 1 {
				t.Fatalf("consecutive ring chips not adjacent along dim 1: %v", l)
			}
		}
	}
	// Extent-1 dim: no rings, no error.
	rings, err = s.Rings(tor, 2)
	if err != nil || rings != nil {
		t.Fatalf("extent-1 rings = (%v, %v)", rings, err)
	}
}

func TestSnakeRingSlice1(t *testing.T) {
	// Table 1's Slice-1: 4x2x1, a single ring over all 8 chips.
	tor := rack()
	s := &Slice{Name: "s1", Origin: Coord{0, 0, 3}, Shape: Shape{4, 2, 1}}
	ring, err := s.SnakeRing(tor)
	if err != nil {
		t.Fatalf("SnakeRing: %v", err)
	}
	assertHamiltonianCycle(t, tor, s, ring)
}

func TestSnakeRing4x4(t *testing.T) {
	tor := rack()
	s := &Slice{Name: "s3", Origin: Coord{0, 0, 2}, Shape: Shape{4, 4, 1}}
	ring, err := s.SnakeRing(tor)
	if err != nil {
		t.Fatalf("SnakeRing: %v", err)
	}
	assertHamiltonianCycle(t, tor, s, ring)
}

func TestSnakeRing2x4Offset(t *testing.T) {
	tor := rack()
	s := &Slice{Name: "o", Origin: Coord{1, 0, 1}, Shape: Shape{2, 4, 1}}
	ring, err := s.SnakeRing(tor)
	if err != nil {
		t.Fatalf("SnakeRing: %v", err)
	}
	assertHamiltonianCycle(t, tor, s, ring)
}

func TestSnakeRing1D(t *testing.T) {
	tor := rack()
	// Full-extent 1-D slice: ring uses the wrap.
	s := &Slice{Name: "line", Origin: Coord{0, 1, 1}, Shape: Shape{4, 1, 1}}
	ring, err := s.SnakeRing(tor)
	if err != nil {
		t.Fatalf("SnakeRing 1D: %v", err)
	}
	assertHamiltonianCycle(t, tor, s, ring)
	// Extent-2 1-D slice.
	s2 := &Slice{Name: "pair", Origin: Coord{0, 1, 1}, Shape: Shape{2, 1, 1}}
	ring, err = s2.SnakeRing(tor)
	if err != nil {
		t.Fatalf("SnakeRing pair: %v", err)
	}
	if len(ring) != 2 {
		t.Fatalf("pair ring = %v", ring)
	}
}

func TestSnakeRingErrors(t *testing.T) {
	tor := rack()
	cases := []*Slice{
		{Name: "single", Origin: Coord{0, 0, 0}, Shape: Shape{1, 1, 1}},
		{Name: "1d-3of4", Origin: Coord{0, 0, 0}, Shape: Shape{3, 1, 1}},
		{Name: "3d", Origin: Coord{0, 0, 0}, Shape: Shape{4, 4, 2}},
		{Name: "odd-odd", Origin: Coord{0, 0, 0}, Shape: Shape{3, 3, 1}},
	}
	for _, s := range cases {
		if _, err := s.SnakeRing(tor); err == nil {
			t.Errorf("slice %q should have no snake ring", s.Name)
		}
	}
}

func TestRingToLinks(t *testing.T) {
	links := RingToLinks([]int{1, 2, 3})
	want := []Link{{1, 2}, {2, 3}, {3, 1}}
	if len(links) != 3 {
		t.Fatalf("links = %v", links)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("links = %v, want %v", links, want)
		}
	}
	if RingToLinks([]int{1}) != nil || RingToLinks(nil) != nil {
		t.Fatal("degenerate rings should yield no links")
	}
}

// assertHamiltonianCycle checks the ring visits every slice chip
// exactly once with consecutive chips torus-adjacent (including the
// closing edge), and that its links are congestion-free.
func assertHamiltonianCycle(t *testing.T, tor *Torus, s *Slice, ring []int) {
	t.Helper()
	if len(ring) != s.Size() {
		t.Fatalf("ring covers %d chips, slice has %d", len(ring), s.Size())
	}
	seen := map[int]bool{}
	for _, c := range ring {
		if seen[c] {
			t.Fatalf("ring revisits chip %d", c)
		}
		seen[c] = true
		if !s.ContainsIndex(tor, c) {
			t.Fatalf("ring chip %d outside slice", c)
		}
	}
	links := RingToLinks(ring)
	for _, l := range links {
		if tor.LinkDim(l) < 0 {
			t.Fatalf("ring step %v not torus-adjacent", l)
		}
	}
	use := LinkUse{}
	use.Add(links)
	if use.MaxCongestion() > 1 {
		t.Fatalf("snake ring self-congests on %v", use.CongestedLinks())
	}
}
