package torus

import (
	"fmt"
	"sort"
)

// Allocation is a set of tenant slices placed on one torus, with
// remaining chips free. It answers the questions behind the paper's
// Figure 5: which dimensions can each slice use without congestion,
// and what fraction of each chip's bandwidth is therefore utilized?
type Allocation struct {
	t      *Torus
	slices []*Slice
	owner  []int // per chip: slice index, or -1 when free
}

// FreeChip is the owner value of an unallocated chip.
const FreeChip = -1

// NewAllocation validates the slices (in bounds, mutually disjoint)
// and returns the allocation.
func NewAllocation(t *Torus, slices []*Slice) (*Allocation, error) {
	a := &Allocation{t: t, slices: slices, owner: make([]int, t.Size())}
	for i := range a.owner {
		a.owner[i] = FreeChip
	}
	for si, s := range slices {
		if err := s.Validate(t); err != nil {
			return nil, err
		}
		for _, chip := range s.Chips(t) {
			if prev := a.owner[chip]; prev != FreeChip {
				return nil, fmt.Errorf("torus: slices %q and %q overlap at chip %d (%v)",
					slices[prev].Name, s.Name, chip, t.Coord(chip))
			}
			a.owner[chip] = si
		}
	}
	return a, nil
}

// Torus returns the underlying torus.
func (a *Allocation) Torus() *Torus { return a.t }

// Slices returns the allocated slices.
func (a *Allocation) Slices() []*Slice { return a.slices }

// Owner returns the slice index owning chip i, or FreeChip.
func (a *Allocation) Owner(i int) int { return a.owner[i] }

// OwnerSlice returns the slice owning chip i, or nil when free.
func (a *Allocation) OwnerSlice(i int) *Slice {
	if o := a.owner[i]; o != FreeChip {
		return a.slices[o]
	}
	return nil
}

// FreeChips returns the indices of unallocated chips in ascending
// order.
func (a *Allocation) FreeChips() []int {
	var free []int
	for i, o := range a.owner {
		if o == FreeChip {
			free = append(free, i)
		}
	}
	return free
}

// LineExclusive reports whether every chip on the dimension-d line
// through chip i is owned by slice index si (or, when
// allowFreePassThrough is set, free). This is the paper's condition
// for a slice to run a dimension-d ring without congestion: a ring on
// a partial line must close through the remainder of the physical
// line, and "traffic not destined for a TPU must be forwarded,
// consuming its bandwidth" (§4.2) — so any other tenant's chip on the
// line makes the ring congesting.
func (a *Allocation) LineExclusive(i, d, si int, allowFreePassThrough bool) bool {
	// Walk the line by stride arithmetic rather than materializing it
	// with Line: this is the inner loop of UsableDims, which every
	// collective plan calls, and chip = base + v*stride visits the same
	// chips Line returns without allocating.
	stride, extent := a.t.strides[d], a.t.shape[d]
	base := i - ((i/stride)%extent)*stride
	for v := 0; v < extent; v++ {
		o := a.owner[base+v*stride]
		if o == si {
			continue
		}
		if o == FreeChip && allowFreePassThrough {
			continue
		}
		return false
	}
	return true
}

// UsableDims returns the dimensions along which the slice can execute
// collective rings without congestion on the electrical torus:
// dimensions of extent >= 2 where every line through the slice is
// exclusive to it. With allowFreePassThrough, lines completed only by
// free chips also count (at the cost of consuming the free chips'
// forwarding bandwidth).
//
// Extent-2 dimensions are a special case: their ring is the two
// directions of a single cable wholly inside the slice, but the
// paper's Figure 5c still counts Slice-1's Y dimension (extent 2,
// sharing its physical Y lines with Slice-2) as unusable — the slice
// torus abstraction requires the dimension line, not just the cable.
// We follow the paper.
func (a *Allocation) UsableDims(si int, allowFreePassThrough bool) []int {
	s := a.slices[si]
	var dims []int
	for d := 0; d < a.t.Dims(); d++ {
		if s.Shape[d] < 2 {
			continue
		}
		usable := true
		for _, chip := range s.Chips(a.t) {
			if !a.LineExclusive(chip, d, si, allowFreePassThrough) {
				usable = false
				break
			}
		}
		if usable {
			dims = append(dims, d)
		}
	}
	return dims
}

// Utilization computes the fraction of a chip's egress bandwidth the
// slice can use on the electrical torus (Figure 5c's electrical bars):
// the number of congestion-free ring dimensions over the torus's
// total dimensions, since a direct-connect chip statically dedicates
// 1/D of its bandwidth to each dimension.
func (a *Allocation) Utilization(si int) float64 {
	return float64(len(a.UsableDims(si, false))) / float64(a.t.Dims())
}

// OpticalUtilization is the same metric for a photonic interconnect
// (Figure 5c's optical bars): as long as the slice has at least one
// usable ring dimension, MZI switches redirect the idle dimensions'
// bandwidth onto the active rings, so the chip's full egress is used.
func (a *Allocation) OpticalUtilization(si int) float64 {
	if len(a.UsableDims(si, false)) == 0 {
		return 0
	}
	return 1
}

// LinkUse counts concurrent transfers per directed link — the paper's
// congestion measure ("multiple transfers occur simultaneously on the
// same link", §4.1).
type LinkUse map[Link]int

// Add records one use of each link.
func (u LinkUse) Add(links []Link) {
	for _, l := range links {
		u[l]++
	}
}

// Remove un-records one use of each link, deleting entries that reach
// zero.
func (u LinkUse) Remove(links []Link) {
	for _, l := range links {
		if u[l] <= 1 {
			delete(u, l)
		} else {
			u[l]--
		}
	}
}

// MaxCongestion returns the highest per-link use count (0 when empty).
// A value above 1 means congestion.
func (u LinkUse) MaxCongestion() int {
	max := 0
	for _, n := range u {
		if n > max {
			max = n
		}
	}
	return max
}

// CongestedLinks returns the links used more than once, sorted for
// deterministic output.
func (u LinkUse) CongestedLinks() []Link {
	var out []Link
	for l, n := range u {
		if n > 1 {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Overlap returns the links present in both sets (each link counted
// once), sorted for deterministic output.
func Overlap(a, b []Link) []Link {
	seen := make(map[Link]bool, len(a))
	for _, l := range a {
		seen[l] = true
	}
	var out []Link
	emitted := make(map[Link]bool)
	for _, l := range b {
		if seen[l] && !emitted[l] {
			out = append(out, l)
			emitted[l] = true
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
