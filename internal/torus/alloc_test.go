package torus

import (
	"math"
	"testing"
)

// fig5bAllocation builds the paper's Figure 5b rack: a 4x4x4 rack
// holding Slice-4 (4x4x2), Slice-3 (4x4x1), and Slice-1/Slice-2
// (4x2x1 each) — 64 chips, fully allocated.
func fig5bAllocation(t *testing.T) (*Torus, *Allocation) {
	t.Helper()
	tor := rack()
	slices := []*Slice{
		{Name: "Slice-1", Origin: Coord{0, 0, 3}, Shape: Shape{4, 2, 1}},
		{Name: "Slice-2", Origin: Coord{0, 2, 3}, Shape: Shape{4, 2, 1}},
		{Name: "Slice-3", Origin: Coord{0, 0, 2}, Shape: Shape{4, 4, 1}},
		{Name: "Slice-4", Origin: Coord{0, 0, 0}, Shape: Shape{4, 4, 2}},
	}
	a, err := NewAllocation(tor, slices)
	if err != nil {
		t.Fatalf("allocation: %v", err)
	}
	return tor, a
}

func TestNewAllocationRejectsOverlap(t *testing.T) {
	tor := rack()
	_, err := NewAllocation(tor, []*Slice{
		{Name: "a", Origin: Coord{0, 0, 0}, Shape: Shape{4, 2, 1}},
		{Name: "b", Origin: Coord{0, 1, 0}, Shape: Shape{4, 2, 1}},
	})
	if err == nil {
		t.Fatal("overlapping slices accepted")
	}
}

func TestNewAllocationRejectsInvalidSlice(t *testing.T) {
	tor := rack()
	_, err := NewAllocation(tor, []*Slice{
		{Name: "bad", Origin: Coord{0, 0}, Shape: Shape{4, 2, 1}},
	})
	if err == nil {
		t.Fatal("invalid slice accepted")
	}
}

func TestOwnerAndFree(t *testing.T) {
	tor := rack()
	s := &Slice{Name: "s", Origin: Coord{0, 0, 0}, Shape: Shape{4, 4, 2}}
	a, err := NewAllocation(tor, []*Slice{s})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Owner(tor.Index(Coord{1, 1, 0})); got != 0 {
		t.Fatalf("owner = %d, want 0", got)
	}
	if got := a.Owner(tor.Index(Coord{1, 1, 3})); got != FreeChip {
		t.Fatalf("owner of free chip = %d", got)
	}
	if got := a.OwnerSlice(tor.Index(Coord{0, 0, 0})); got != s {
		t.Fatal("OwnerSlice mismatch")
	}
	if got := a.OwnerSlice(tor.Index(Coord{0, 0, 3})); got != nil {
		t.Fatal("OwnerSlice of free chip should be nil")
	}
	if free := a.FreeChips(); len(free) != 32 {
		t.Fatalf("free chips = %d, want 32", len(free))
	}
	if a.Torus() != tor || len(a.Slices()) != 1 {
		t.Fatal("accessors broken")
	}
}

// TestFig5bUsableDims reproduces the paper's §4.1 analysis verbatim:
//
//   - Slice-1 and Slice-2 "share both the Y and Z dimensions with
//     other slices and can only execute the X dimensional ring" —
//     usable dims {X}.
//   - Slice-3 (Table 2, D=2) runs rings in X and Y; Z is shared —
//     usable dims {X, Y}.
//   - Slice-4 spans X and Y; its Z extent (2 of 4) shares the Z lines
//     with Slices 1-3 — usable dims {X, Y}.
func TestFig5bUsableDims(t *testing.T) {
	_, a := fig5bAllocation(t)
	want := map[string][]int{
		"Slice-1": {0},
		"Slice-2": {0},
		"Slice-3": {0, 1},
		"Slice-4": {0, 1},
	}
	for si, s := range a.Slices() {
		got := a.UsableDims(si, false)
		w := want[s.Name]
		if len(got) != len(w) {
			t.Fatalf("%s usable dims = %v, want %v", s.Name, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s usable dims = %v, want %v", s.Name, got, w)
			}
		}
	}
}

// TestFig5cUtilization reproduces Figure 5c: electrically, Slice-1 and
// Slice-2 reach only 1/3 of chip bandwidth ("up to 66% lower"),
// Slice-3 and Slice-4 reach 2/3 (the 33% under-utilization of §4.1);
// optically every slice reaches full utilization.
func TestFig5cUtilization(t *testing.T) {
	_, a := fig5bAllocation(t)
	wantElec := map[string]float64{
		"Slice-1": 1.0 / 3,
		"Slice-2": 1.0 / 3,
		"Slice-3": 2.0 / 3,
		"Slice-4": 2.0 / 3,
	}
	for si, s := range a.Slices() {
		elec := a.Utilization(si)
		if math.Abs(elec-wantElec[s.Name]) > 1e-12 {
			t.Errorf("%s electrical utilization = %v, want %v", s.Name, elec, wantElec[s.Name])
		}
		if opt := a.OpticalUtilization(si); opt != 1 {
			t.Errorf("%s optical utilization = %v, want 1", s.Name, opt)
		}
	}
	// The headline: Slice-1 suffers 66% lower bandwidth electrically.
	drop := 1 - a.Utilization(0)/a.OpticalUtilization(0)
	if math.Abs(drop-2.0/3) > 1e-12 {
		t.Fatalf("Slice-1 bandwidth drop = %.0f%%, want 66%%", drop*100)
	}
}

// TestZRingsCongest verifies the §4.1 claim that "rings along the Z
// dimension of all the slices ... share the links between servers in
// the Z dimension": no slice in the Figure 5b rack can run a Z ring.
func TestZRingsCongest(t *testing.T) {
	_, a := fig5bAllocation(t)
	for si, s := range a.Slices() {
		for _, d := range a.UsableDims(si, false) {
			if d == 2 {
				t.Fatalf("%s can use the Z dimension; it should be shared", s.Name)
			}
		}
	}
}

func TestUsableDimsWithFreePassThrough(t *testing.T) {
	tor := rack()
	// A lone 4x2x1 slice: its Y lines are completed by free chips.
	a, err := NewAllocation(tor, []*Slice{
		{Name: "lone", Origin: Coord{0, 0, 0}, Shape: Shape{4, 2, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	strict := a.UsableDims(0, false)
	if len(strict) != 1 || strict[0] != 0 {
		t.Fatalf("strict usable dims = %v, want [0]", strict)
	}
	// With pass-through over free chips, the Y lines complete through
	// the free half of the rack. Z (extent 1) has no ring regardless.
	relaxed := a.UsableDims(0, true)
	if len(relaxed) != 2 || relaxed[0] != 0 || relaxed[1] != 1 {
		t.Fatalf("free-pass-through usable dims = %v, want [0 1]", relaxed)
	}
}

func TestOpticalUtilizationZeroWhenNoRings(t *testing.T) {
	tor := rack()
	// A single chip has no rings at all; even optics cannot help.
	a, err := NewAllocation(tor, []*Slice{
		{Name: "one", Origin: Coord{0, 0, 0}, Shape: Shape{1, 1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.OpticalUtilization(0); got != 0 {
		t.Fatalf("optical utilization of 1-chip slice = %v, want 0", got)
	}
}

func TestLinkUse(t *testing.T) {
	u := LinkUse{}
	links := []Link{{1, 2}, {2, 3}}
	u.Add(links)
	u.Add([]Link{{1, 2}})
	if u.MaxCongestion() != 2 {
		t.Fatalf("max congestion = %d, want 2", u.MaxCongestion())
	}
	congested := u.CongestedLinks()
	if len(congested) != 1 || congested[0] != (Link{1, 2}) {
		t.Fatalf("congested = %v", congested)
	}
	u.Remove([]Link{{1, 2}})
	if u.MaxCongestion() != 1 {
		t.Fatalf("after remove: %d", u.MaxCongestion())
	}
	u.Remove(links)
	if len(u) != 0 {
		t.Fatalf("after removing all: %v", u)
	}
	if (LinkUse{}).MaxCongestion() != 0 {
		t.Fatal("empty use should have zero congestion")
	}
}

func TestOverlap(t *testing.T) {
	a := []Link{{1, 2}, {2, 3}, {3, 4}}
	b := []Link{{3, 4}, {2, 3}, {9, 9}, {2, 3}}
	got := Overlap(a, b)
	if len(got) != 2 || got[0] != (Link{2, 3}) || got[1] != (Link{3, 4}) {
		t.Fatalf("overlap = %v", got)
	}
	if got := Overlap(a, nil); len(got) != 0 {
		t.Fatalf("overlap with empty = %v", got)
	}
}

// TestSliceRingsDisjointWithinRack verifies the DESIGN.md invariant
// on the Figure 5b rack: the usable rings of all slices, taken
// together, are congestion-free — the under-utilization model is
// self-consistent.
func TestSliceRingsDisjointWithinRack(t *testing.T) {
	tor, a := fig5bAllocation(t)
	use := LinkUse{}
	for si, s := range a.Slices() {
		for _, d := range a.UsableDims(si, false) {
			links, err := s.RingLinks(tor, d)
			if err != nil {
				t.Fatalf("%s dim %d: %v", s.Name, d, err)
			}
			use.Add(links)
		}
	}
	if use.MaxCongestion() > 1 {
		t.Fatalf("usable rings congest on %v", use.CongestedLinks())
	}
}
