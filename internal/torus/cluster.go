package torus

import (
	"fmt"
)

// Cluster models a TPUv4-style deployment (§4, Figure 5a): identical
// racks, each an electrically-connected torus cube, whose opposite
// faces attach to optical circuit switches (OCSes). Programming the
// OCSes splices racks into larger tori along a dimension; an
// unspliced rack's faces wrap onto itself, making it a standalone
// torus.
//
// Chips have global IDs: rack*RackSize + localIndex. Links between
// chips in the same rack are electrical; links that cross racks (and
// the wrap-around face links of a standalone rack) traverse an OCS.
type Cluster struct {
	rack     *Torus
	numRacks int
	// next[d][r] is the rack whose -d face attaches to rack r's +d
	// face; prev is the inverse. Default: the rack itself.
	next [][]int
	prev [][]int
}

// TPUv4RackShape is the paper's rack: a 4x4x4 cube of 64 TPUs.
var TPUv4RackShape = Shape{4, 4, 4}

// TPUv4NumRacks is the paper's cluster scale: "The supercomputer has
// 64 racks" (§4), 4096 chips total.
const TPUv4NumRacks = 64

// ChipsPerServer reflects "16 multi-accelerator servers, each with 4
// TPU chips" per rack (§4): servers are 2x2x1 blocks of the cube.
const ChipsPerServer = 4

// NewCluster builds a cluster of numRacks standalone racks of the
// given shape.
func NewCluster(rackShape Shape, numRacks int) (*Cluster, error) {
	if numRacks <= 0 {
		return nil, fmt.Errorf("torus: cluster needs at least one rack, got %d", numRacks)
	}
	if err := rackShape.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		rack:     New(rackShape),
		numRacks: numRacks,
		next:     make([][]int, rackShape.Dims()),
		prev:     make([][]int, rackShape.Dims()),
	}
	for d := range c.next {
		c.next[d] = make([]int, numRacks)
		c.prev[d] = make([]int, numRacks)
		for r := 0; r < numRacks; r++ {
			c.next[d][r] = r
			c.prev[d][r] = r
		}
	}
	return c, nil
}

// NewTPUv4Cluster builds the paper's 64-rack, 4096-chip deployment.
func NewTPUv4Cluster() *Cluster {
	c, err := NewCluster(TPUv4RackShape, TPUv4NumRacks)
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	return c
}

// Rack returns the per-rack torus.
func (c *Cluster) Rack() *Torus { return c.rack }

// NumRacks returns the rack count.
func (c *Cluster) NumRacks() int { return c.numRacks }

// RackSize returns the chips per rack.
func (c *Cluster) RackSize() int { return c.rack.Size() }

// Size returns the total chip count.
func (c *Cluster) Size() int { return c.numRacks * c.rack.Size() }

// GlobalID converts (rack, local chip) to a global chip ID.
func (c *Cluster) GlobalID(rack, chip int) int {
	if rack < 0 || rack >= c.numRacks {
		panic(fmt.Sprintf("torus: rack %d out of range [0, %d)", rack, c.numRacks))
	}
	if chip < 0 || chip >= c.rack.Size() {
		panic(fmt.Sprintf("torus: chip %d out of range [0, %d)", chip, c.rack.Size()))
	}
	return rack*c.rack.Size() + chip
}

// Split converts a global chip ID back to (rack, local chip).
func (c *Cluster) Split(g int) (rack, chip int) {
	if g < 0 || g >= c.Size() {
		panic(fmt.Sprintf("torus: global chip %d out of range [0, %d)", g, c.Size()))
	}
	return g / c.rack.Size(), g % c.rack.Size()
}

// ServerOf returns the server index hosting a local chip: 2x2x1
// blocks of a 3-D rack (16 servers of 4 chips in a 4x4x4 cube). For
// racks that are not 3-D it groups consecutive chips.
func (c *Cluster) ServerOf(chip int) int {
	if c.rack.Dims() == 3 {
		co := c.rack.Coord(chip)
		sx := co[0] / 2
		sy := co[1] / 2
		nz := c.rack.Extent(2)
		nsy := (c.rack.Extent(1) + 1) / 2
		return (sx*nsy+sy)*nz + co[2]
	}
	return chip / ChipsPerServer
}

// ServerChips returns the local chips of the given server.
func (c *Cluster) ServerChips(server int) []int {
	var chips []int
	for i := 0; i < c.rack.Size(); i++ {
		if c.ServerOf(i) == server {
			chips = append(chips, i)
		}
	}
	return chips
}

// Join programs the OCSes of dimension d so the given racks form a
// larger torus along d in sequence order: rack seq[i]'s +d face
// splices to seq[i+1]'s -d face, wrapping from the last back to the
// first. Every rack must currently be standalone in d (its faces wrap
// to itself); re-joining requires Isolate first.
func (c *Cluster) Join(d int, seq []int) error {
	if d < 0 || d >= c.rack.Dims() {
		return fmt.Errorf("torus: dimension %d out of range", d)
	}
	if len(seq) < 2 {
		return fmt.Errorf("torus: joining needs at least two racks, got %d", len(seq))
	}
	seen := make(map[int]bool, len(seq))
	for _, r := range seq {
		if r < 0 || r >= c.numRacks {
			return fmt.Errorf("torus: rack %d out of range [0, %d)", r, c.numRacks)
		}
		if seen[r] {
			return fmt.Errorf("torus: rack %d appears twice in join sequence", r)
		}
		seen[r] = true
		if c.next[d][r] != r {
			return fmt.Errorf("torus: rack %d already joined along dimension %d", r, d)
		}
	}
	for i, r := range seq {
		nxt := seq[(i+1)%len(seq)]
		c.next[d][r] = nxt
		c.prev[d][nxt] = r
	}
	return nil
}

// Isolate reprograms the OCSes so the rack is standalone along
// dimension d again, splicing its former neighbors to each other.
func (c *Cluster) Isolate(d, rack int) {
	n, p := c.next[d][rack], c.prev[d][rack]
	if n == rack {
		return
	}
	if n == p && n != rack {
		// Two-rack loop: the other rack becomes standalone too.
		c.next[d][n] = n
		c.prev[d][n] = n
	} else {
		c.next[d][p] = n
		c.prev[d][n] = p
	}
	c.next[d][rack] = rack
	c.prev[d][rack] = rack
}

// NeighborGlobal returns the global chip adjacent to g along
// dimension d in direction dir (+1/-1), following OCS splices across
// rack faces.
func (c *Cluster) NeighborGlobal(g, d, dir int) int {
	rack, chip := c.Split(g)
	co := c.rack.Coord(chip)
	e := c.rack.Extent(d)
	v := co[d] + dir
	switch {
	case v >= e:
		co[d] = 0
		return c.GlobalID(c.next[d][rack], c.rack.Index(co))
	case v < 0:
		co[d] = e - 1
		return c.GlobalID(c.prev[d][rack], c.rack.Index(co))
	default:
		co[d] = v
		return c.GlobalID(rack, c.rack.Index(co))
	}
}

// GlobalNeighbors returns every chip adjacent to g, over all
// dimensions and directions. Extent-1 dimensions contribute no
// neighbors for standalone racks, but do cross racks when spliced.
func (c *Cluster) GlobalNeighbors(g int) []int {
	var out []int
	for d := 0; d < c.rack.Dims(); d++ {
		for _, dir := range [2]int{+1, -1} {
			n := c.NeighborGlobal(g, d, dir)
			if n != g {
				out = append(out, n)
			}
		}
	}
	return out
}

// InterRack reports whether a global link crosses racks (and hence
// traverses an OCS and optical fiber rather than on-board wires).
func (c *Cluster) InterRack(l Link) bool {
	ra, _ := c.Split(l.From)
	rb, _ := c.Split(l.To)
	return ra != rb
}

// GlobalLinkDim returns the dimension of a global link, or -1 if the
// chips are not adjacent in the spliced topology.
func (c *Cluster) GlobalLinkDim(l Link) int {
	for d := 0; d < c.rack.Dims(); d++ {
		for _, dir := range [2]int{+1, -1} {
			if c.NeighborGlobal(l.From, d, dir) == l.To {
				return d
			}
		}
	}
	return -1
}
