// Package torus models direct-connect torus interconnects of ML
// accelerators: the substrate of Google's TPUv4 supercomputer that the
// paper uses for all of its §4 scenarios (Figures 5-7, Tables 1-2).
//
// A Torus is an N-dimensional wrap-around grid of chips with directed
// links between adjacent chips. Slices are sub-tori allocated to
// tenants. The package provides the paper's congestion model:
// congestion is "multiple transfers occurring simultaneously on the
// same link" (§4.1), and a slice can run a collective ring along a
// dimension without congestion only if it can close a directed cycle
// on the physical dimension line without touching another tenant's
// chips or links (§4.1's bandwidth-under-utilization observation and
// §4.2's pass-through/forwarding argument).
package torus

import (
	"errors"
	"fmt"
)

// Shape is the per-dimension extent of a torus or slice, e.g.
// Shape{4, 4, 4} for a TPUv4 rack cube.
type Shape []int

// Size returns the total number of chips: the product of extents.
func (s Shape) Size() int {
	n := 1
	for _, e := range s {
		n *= e
	}
	return n
}

// Dims returns the number of dimensions.
func (s Shape) Dims() int { return len(s) }

// Validate reports whether every extent is positive.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return errors.New("torus: empty shape")
	}
	for d, e := range s {
		if e <= 0 {
			return fmt.Errorf("torus: dimension %d has non-positive extent %d", d, e)
		}
	}
	return nil
}

// Clone returns an independent copy.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String formats the shape as "4x4x4".
func (s Shape) String() string {
	out := ""
	for i, e := range s {
		if i > 0 {
			out += "x"
		}
		out += fmt.Sprintf("%d", e)
	}
	return out
}

// Coord is a chip position, one entry per dimension.
type Coord []int

// Clone returns an independent copy.
func (c Coord) Clone() Coord {
	o := make(Coord, len(c))
	copy(o, c)
	return o
}

// Equal reports whether two coordinates are identical.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// String formats the coordinate as "(x,y,z)".
func (c Coord) String() string {
	out := "("
	for i, v := range c {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d", v)
	}
	return out + ")"
}

// Torus is an N-dimensional direct-connect torus of chips. Chips are
// identified both by Coord and by a dense integer index in
// [0, Size()). Links are directed: the pair (a->b, b->a) models the
// two directions of a full-duplex ICI/NVLink-style cable, each with
// its own bandwidth.
type Torus struct {
	shape   Shape
	strides []int
}

// New constructs a torus of the given shape. It panics on an invalid
// shape; use Shape.Validate to check first when the shape is not
// statically known.
func New(shape Shape) *Torus {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	t := &Torus{shape: shape.Clone(), strides: make([]int, len(shape))}
	stride := 1
	for d := len(shape) - 1; d >= 0; d-- {
		t.strides[d] = stride
		stride *= shape[d]
	}
	return t
}

// Shape returns the torus shape (a copy).
func (t *Torus) Shape() Shape { return t.shape.Clone() }

// Dims returns the number of dimensions.
func (t *Torus) Dims() int { return len(t.shape) }

// Extent returns the size of dimension d.
func (t *Torus) Extent(d int) int { return t.shape[d] }

// Size returns the number of chips.
func (t *Torus) Size() int { return t.shape.Size() }

// Index linearizes a coordinate. Coordinates are wrapped into range,
// so Index(Coord{-1, 0, 0}) on a 4x4x4 torus is the chip at (3,0,0).
func (t *Torus) Index(c Coord) int {
	if len(c) != len(t.shape) {
		panic(fmt.Sprintf("torus: coord %v has %d dims, torus has %d", c, len(c), len(t.shape)))
	}
	idx := 0
	for d, v := range c {
		e := t.shape[d]
		v %= e
		if v < 0 {
			v += e
		}
		idx += v * t.strides[d]
	}
	return idx
}

// Coord returns the coordinate of a chip index. It panics on an
// out-of-range index.
func (t *Torus) Coord(i int) Coord {
	if i < 0 || i >= t.Size() {
		panic(fmt.Sprintf("torus: index %d out of range [0, %d)", i, t.Size()))
	}
	c := make(Coord, len(t.shape))
	for d := range t.shape {
		c[d] = (i / t.strides[d]) % t.shape[d]
	}
	return c
}

// Neighbor returns the chip adjacent to i along dimension d in
// direction dir (+1 or -1), with wrap-around.
func (t *Torus) Neighbor(i, d, dir int) int {
	c := t.Coord(i)
	c[d] += dir
	return t.Index(c)
}

// Link is a directed edge between two adjacent chips (or, in a
// Cluster, across an OCS between racks). Links are comparable and
// usable as map keys.
type Link struct {
	From, To int
}

// Reverse returns the opposite direction of the link.
func (l Link) Reverse() Link { return Link{From: l.To, To: l.From} }

// String formats the link as "a->b".
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// LinkDim returns the dimension along which a link runs, or -1 if the
// two chips are not torus-adjacent.
func (t *Torus) LinkDim(l Link) int {
	if l.From == l.To {
		return -1
	}
	if l.From < 0 || l.From >= t.Size() || l.To < 0 || l.To >= t.Size() {
		panic(fmt.Sprintf("torus: link %v out of range [0, %d)", l, t.Size()))
	}
	// Per-dimension coordinates computed from the strides directly;
	// this runs per transfer in the schedule executors, so it must not
	// materialize Coord slices.
	dim := -1
	for d := range t.shape {
		e := t.shape[d]
		vf := (l.From / t.strides[d]) % e
		vt := (l.To / t.strides[d]) % e
		if vf == vt {
			continue
		}
		if dim >= 0 {
			return -1 // differs in more than one dimension
		}
		diff := (vt - vf + e) % e
		if diff != 1 && diff != e-1 {
			return -1 // not adjacent along d
		}
		dim = d
	}
	return dim
}

// AllLinks enumerates every directed link of the torus. Dimensions of
// extent 1 have no links; dimensions of extent 2 have exactly two
// directed links per chip pair (one each way), not four — the
// "wrap-around" of an extent-2 ring is the same physical cable.
func (t *Torus) AllLinks() []Link {
	var links []Link
	for i := 0; i < t.Size(); i++ {
		for d := 0; d < t.Dims(); d++ {
			e := t.shape[d]
			if e == 1 {
				continue
			}
			// Each directed link is emitted exactly once, by its From
			// chip. For e == 2 the +1 and -1 neighbors coincide, so
			// emitting both would duplicate the pair's links.
			links = append(links, Link{From: i, To: t.Neighbor(i, d, +1)})
			if e > 2 {
				links = append(links, Link{From: i, To: t.Neighbor(i, d, -1)})
			}
		}
	}
	return links
}

// Line returns the chips along dimension d passing through chip i, in
// increasing coordinate order starting from coordinate 0. The line has
// Extent(d) chips.
func (t *Torus) Line(i, d int) []int {
	c := t.Coord(i)
	line := make([]int, t.shape[d])
	for v := 0; v < t.shape[d]; v++ {
		c[d] = v
		line[v] = t.Index(c)
	}
	return line
}

// DORPath returns the directed links of the dimension-ordered route
// from one chip to another: correct each dimension in ascending order,
// stepping in whichever wrap direction is shorter (ties go +1). This
// is the standard minimal routing of direct-connect tori, used to
// model how an electrical torus carries traffic between non-adjacent
// chips. A self-path is empty.
func (t *Torus) DORPath(from, to int) []Link {
	var links []Link
	cur := t.Coord(from)
	dst := t.Coord(to)
	at := from
	for d := 0; d < t.Dims(); d++ {
		e := t.shape[d]
		diff := ((dst[d]-cur[d])%e + e) % e
		dir, steps := +1, diff
		if diff > e-diff {
			// Shorter the other way around the ring.
			dir, steps = -1, e-diff
		}
		for s := 0; s < steps; s++ {
			next := t.Neighbor(at, d, dir)
			links = append(links, Link{From: at, To: next})
			at = next
		}
		cur[d] = dst[d]
	}
	return links
}

// RingLinksForLine returns the directed links of the full dimension-d
// ring through chip i, in the +1 orientation: a closed cycle of
// Extent(d) links. For extent 2 the "cycle" is the two opposite
// directed links of the single cable. Dimensions of extent 1 yield no
// links.
func (t *Torus) RingLinksForLine(i, d int) []Link {
	e := t.shape[d]
	if e == 1 {
		return nil
	}
	line := t.Line(i, d)
	links := make([]Link, 0, e)
	for v := 0; v < e; v++ {
		links = append(links, Link{From: line[v], To: line[(v+1)%e]})
	}
	return links
}
