package sketch

import (
	"errors"
	"math"
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/snapshot"
)

func TestReservoirKeepsShortStreamsExactly(t *testing.T) {
	s := NewReservoir[int](16, rng.New(1))
	for i := 0; i < 16; i++ {
		s.Add(i)
	}
	items := s.Items()
	for i, v := range items {
		if v != i {
			t.Fatalf("items[%d] = %d, want %d (short streams must be exact)", i, v, i)
		}
	}
}

func TestReservoirIsUniform(t *testing.T) {
	// Each of 1000 stream items should land in a 100-slot reservoir
	// with probability 1/10; averaged over many trials the hit count
	// per item is flat. Check the first/last deciles don't diverge —
	// Algorithm R's classic failure mode is recency bias.
	const n, k, trials = 1000, 100, 200
	hits := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		s := NewReservoir[int](k, rng.New(uint64(trial)))
		for i := 0; i < n; i++ {
			s.Add(i)
		}
		for _, v := range s.Items() {
			hits[v]++
		}
	}
	var early, late int
	for i := 0; i < n/10; i++ {
		early += hits[i]
		late += hits[n-1-i]
	}
	expect := trials * k / 10
	for name, got := range map[string]int{"early": early, "late": late} {
		if got < expect*8/10 || got > expect*12/10 {
			t.Fatalf("%s decile hit count %d, want ~%d", name, got, expect)
		}
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func() []int {
		s := NewReservoir[int](32, rng.New(7))
		for i := 0; i < 5000; i++ {
			s.Add(i)
		}
		return s.Items()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different sample at slot %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestReservoirStateRoundTrip(t *testing.T) {
	// Kill at item 3000 of 5000, restore, continue: must match the
	// uninterrupted run exactly, slot for slot.
	full := NewReservoir[int](32, rng.New(7))
	half := NewReservoir[int](32, rng.New(7))
	for i := 0; i < 3000; i++ {
		full.Add(i)
		half.Add(i)
	}
	var e snapshot.Encoder
	half.EncodeState(&e, func(e *snapshot.Encoder, v int) { e.Int(v) })

	resumed := NewReservoir[int](32, rng.New(999)) // wrong seed on purpose
	d := snapshot.NewDecoder(e.Bytes())
	if err := resumed.RestoreState(d, func(d *snapshot.Decoder) int { return d.Int() }); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	for i := 3000; i < 5000; i++ {
		full.Add(i)
		resumed.Add(i)
	}
	if full.Seen() != resumed.Seen() {
		t.Fatalf("seen diverges: %d vs %d", full.Seen(), resumed.Seen())
	}
	f, r := full.Items(), resumed.Items()
	for i := range f {
		if f[i] != r[i] {
			t.Fatalf("slot %d diverges after resume: %d vs %d", i, f[i], r[i])
		}
	}
}

func TestReservoirRestoreRejectsOverCapacity(t *testing.T) {
	big := NewReservoir[int](64, rng.New(1))
	for i := 0; i < 64; i++ {
		big.Add(i)
	}
	var e snapshot.Encoder
	big.EncodeState(&e, func(e *snapshot.Encoder, v int) { e.Int(v) })
	small := NewReservoir[int](8, rng.New(1))
	err := small.RestoreState(snapshot.NewDecoder(e.Bytes()), func(d *snapshot.Decoder) int { return d.Int() })
	if !errors.Is(err, snapshot.ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Feed a shuffled permutation of [0, n) so true quantiles are
	// known exactly; the sketch must land within ~2% rank error.
	const n = 100000
	q := NewQuantile(DefaultK, rng.New(3))
	perm := rng.New(4).Perm(n)
	for _, v := range perm {
		q.Add(float64(v))
	}
	if q.Count() != n {
		t.Fatalf("count = %d, want %d", q.Count(), n)
	}
	for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		got := q.Query(phi)
		want := phi * n
		if math.Abs(got-want) > 0.02*n {
			t.Fatalf("quantile %.2f = %.0f, want %.0f ± %.0f", phi, got, want, 0.02*n)
		}
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	q := NewQuantile(0, rng.New(1))
	if v := q.Query(0.5); !math.IsNaN(v) {
		t.Fatalf("empty sketch Query = %v, want NaN", v)
	}
	q.Add(42)
	for _, phi := range []float64{-1, 0, 0.5, 1, 2} {
		if v := q.Query(phi); v != 42 {
			t.Fatalf("single-value Query(%v) = %v, want 42", phi, v)
		}
	}
}

func TestQuantileMerge(t *testing.T) {
	// Two sketches over disjoint halves, merged, must approximate the
	// quantiles of the union.
	const n = 50000
	a := NewQuantile(DefaultK, rng.New(5))
	b := NewQuantile(DefaultK, rng.New(6))
	for _, v := range rng.New(7).Perm(n) {
		if v < n/2 {
			a.Add(float64(v))
		} else {
			b.Add(float64(v))
		}
	}
	a.Merge(b)
	if a.Count() != n {
		t.Fatalf("merged count = %d, want %d", a.Count(), n)
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got := a.Query(phi)
		want := phi * n
		if math.Abs(got-want) > 0.03*n {
			t.Fatalf("merged quantile %.2f = %.0f, want %.0f", phi, got, want)
		}
	}
}

func TestQuantileStateRoundTrip(t *testing.T) {
	full := NewQuantile(64, rng.New(9))
	half := NewQuantile(64, rng.New(9))
	vals := rng.New(10).Perm(20000)
	for _, v := range vals[:12000] {
		full.Add(float64(v))
		half.Add(float64(v))
	}
	var e snapshot.Encoder
	half.EncodeState(&e)

	resumed := NewQuantile(64, rng.New(999))
	d := snapshot.NewDecoder(e.Bytes())
	if err := resumed.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	for _, v := range vals[12000:] {
		full.Add(float64(v))
		resumed.Add(float64(v))
	}
	// Resumed and uninterrupted sketches must be bit-identical: same
	// counts, same levels, same future compaction decisions.
	var ef, er snapshot.Encoder
	full.EncodeState(&ef)
	resumed.EncodeState(&er)
	if string(ef.Bytes()) != string(er.Bytes()) {
		t.Fatal("resumed sketch state diverges from uninterrupted run")
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if full.Query(phi) != resumed.Query(phi) {
			t.Fatalf("quantile %.2f diverges: %v vs %v", phi, full.Query(phi), resumed.Query(phi))
		}
	}
}

func TestQuantileMemoryBounded(t *testing.T) {
	// A year of 10-minute samples is ~52k values; the sketch must hold
	// O(k log n) items, not O(n).
	q := NewQuantile(DefaultK, rng.New(11))
	for i := 0; i < 1<<20; i++ {
		q.Add(float64(i))
	}
	var held int
	for _, level := range q.levels {
		held += len(level)
	}
	if held > DefaultK*24 {
		t.Fatalf("sketch holds %d items after 1M adds, want O(k log n) ≤ %d", held, DefaultK*24)
	}
}
