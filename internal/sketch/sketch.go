// Package sketch provides bounded-memory streaming summaries for
// long-horizon simulations: a fixed-capacity reservoir sample and a
// mergeable KLL-style quantile sketch. Both are deterministic — their
// replacement and compaction decisions draw from an injected rng
// stream, never from Go runtime randomness — and both expose their
// state for checkpointing, so a killed run resumes producing exactly
// the summary the uninterrupted run would have. A year-long fleet
// soak that would otherwise accumulate O(horizon/SampleEvery) sample
// rows holds a few kilobytes instead.
package sketch

import (
	"fmt"
	"math"
	"sort"

	"lightpath/internal/rng"
	"lightpath/internal/snapshot"
)

// Reservoir maintains a uniform sample of fixed capacity over a
// stream of unknown length (Vitter's Algorithm R). The first capacity
// items are kept verbatim, so short streams are retained exactly; a
// longer stream ends with each seen item equally likely to be in the
// sample.
type Reservoir[T any] struct {
	capacity int
	seen     uint64
	items    []T
	r        *rng.Rand
}

// NewReservoir returns a reservoir holding at most capacity items,
// using r for replacement decisions. It panics if capacity <= 0 or r
// is nil — both are construction bugs, not data errors.
func NewReservoir[T any](capacity int, r *rng.Rand) *Reservoir[T] {
	if capacity <= 0 {
		panic("sketch: reservoir capacity must be positive")
	}
	if r == nil {
		panic("sketch: reservoir needs an rng stream")
	}
	return &Reservoir[T]{capacity: capacity, r: r}
}

// Add offers one item to the reservoir.
func (s *Reservoir[T]) Add(v T) {
	s.seen++
	if len(s.items) < s.capacity {
		s.items = append(s.items, v)
		return
	}
	if j := s.r.Intn(int(s.seen)); j < s.capacity {
		s.items[j] = v
	}
}

// Seen returns how many items the stream has offered.
func (s *Reservoir[T]) Seen() uint64 { return s.seen }

// Items returns a copy of the current sample. While Seen() <=
// capacity the items are in arrival order; after that, slot order is
// arbitrary and callers needing order must sort by their own key.
func (s *Reservoir[T]) Items() []T {
	return append([]T(nil), s.items...)
}

// EncodeState appends the reservoir's state — count, items, rng
// position — to the encoder. Capacity is configuration and is not
// serialized; the restoring side constructs with the same capacity.
func (s *Reservoir[T]) EncodeState(e *snapshot.Encoder, enc func(*snapshot.Encoder, T)) {
	e.U64(s.seen)
	for _, w := range s.r.State() {
		e.U64(w)
	}
	e.Len(len(s.items))
	for _, v := range s.items {
		enc(e, v)
	}
}

// RestoreState replays state captured by EncodeState into a freshly
// constructed reservoir of the same capacity.
func (s *Reservoir[T]) RestoreState(d *snapshot.Decoder, dec func(*snapshot.Decoder) T) error {
	s.seen = d.U64()
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	s.r.SetState(st)
	n := d.Len()
	if n > s.capacity {
		return fmt.Errorf("%w: reservoir snapshot has %d items, capacity %d",
			snapshot.ErrCorruptSnapshot, n, s.capacity)
	}
	s.items = s.items[:0]
	for i := 0; i < n; i++ {
		s.items = append(s.items, dec(d))
	}
	return d.Err()
}

// Quantile is a KLL-style streaming quantile sketch: a hierarchy of
// levels where an item at level h stands for 2^h stream items. When a
// level fills it is compacted — sorted, then every other item
// promoted to the next level, the survivors' offset chosen by the
// injected rng stream so the estimate is unbiased yet reproducible.
// Memory is O(k · log(n/k)); error concentrates around rank ±n/k.
// Sketches built with the same k merge losslessly in summary form.
type Quantile struct {
	k      int
	count  uint64
	levels [][]float64
	r      *rng.Rand
}

// DefaultK is a level capacity giving ~0.5% rank error, a few
// kilobytes total for a year of samples.
const DefaultK = 200

// NewQuantile returns a sketch with level capacity k (DefaultK if
// k <= 0), using r for compaction offsets. It panics if r is nil.
func NewQuantile(k int, r *rng.Rand) *Quantile {
	if k <= 0 {
		k = DefaultK
	}
	if r == nil {
		panic("sketch: quantile sketch needs an rng stream")
	}
	return &Quantile{k: k, r: r}
}

// Add offers one value to the sketch.
func (q *Quantile) Add(v float64) {
	q.count++
	if len(q.levels) == 0 {
		q.levels = append(q.levels, make([]float64, 0, q.k))
	}
	q.levels[0] = append(q.levels[0], v)
	q.compactFrom(0)
}

// Count returns how many values the sketch has absorbed.
func (q *Quantile) Count() uint64 { return q.count }

// compactFrom cascades compaction upward from level h while any level
// is at capacity.
func (q *Quantile) compactFrom(h int) {
	for ; h < len(q.levels) && len(q.levels[h]) >= q.k; h++ {
		level := q.levels[h]
		sort.Float64s(level)
		// Compact an even count; an odd straggler (the maximum after
		// sorting) stays behind at this level with its weight intact.
		m := len(level) &^ 1
		offset := int(q.r.Uint64() & 1)
		if h+1 == len(q.levels) {
			q.levels = append(q.levels, make([]float64, 0, q.k))
		}
		for i := offset; i < m; i += 2 {
			q.levels[h+1] = append(q.levels[h+1], level[i])
		}
		rest := level[:0]
		if m < len(level) {
			rest = append(rest, level[m])
		}
		q.levels[h] = rest
	}
}

// Merge absorbs another sketch built with the same k. The receiver
// afterward summarizes the concatenation of both streams; the donor
// is left untouched. It panics on mismatched k — merging sketches of
// different resolution is a construction bug.
func (q *Quantile) Merge(o *Quantile) {
	if o.k != q.k {
		panic("sketch: merging quantile sketches with different k")
	}
	q.count += o.count
	for h, level := range o.levels {
		for h >= len(q.levels) {
			q.levels = append(q.levels, make([]float64, 0, q.k))
		}
		q.levels[h] = append(q.levels[h], level...)
	}
	for h := 0; h < len(q.levels); h++ {
		q.compactFrom(h)
	}
}

// Query returns an estimate of the phi-quantile (phi in [0, 1]) of
// everything Added so far, or NaN for an empty sketch.
func (q *Quantile) Query(phi float64) float64 {
	type weighted struct {
		v float64
		w uint64
	}
	var items []weighted
	var total uint64
	for h, level := range q.levels {
		w := uint64(1) << uint(h)
		for _, v := range level {
			items = append(items, weighted{v, w})
			total += w
		}
	}
	if total == 0 {
		return math.NaN()
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v < items[j].v
		}
		return items[i].w < items[j].w
	})
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := uint64(phi * float64(total-1))
	var cum uint64
	for _, it := range items {
		cum += it.w
		if cum > target {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// EncodeState appends the sketch's state — count, levels, rng
// position — to the encoder. k is configuration and is not
// serialized.
func (q *Quantile) EncodeState(e *snapshot.Encoder) {
	e.U64(q.count)
	for _, w := range q.r.State() {
		e.U64(w)
	}
	e.Len(len(q.levels))
	for _, level := range q.levels {
		e.Len(len(level))
		for _, v := range level {
			e.F64(v)
		}
	}
}

// RestoreState replays state captured by EncodeState into a freshly
// constructed sketch of the same k.
func (q *Quantile) RestoreState(d *snapshot.Decoder) error {
	q.count = d.U64()
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	q.r.SetState(st)
	n := d.Len()
	q.levels = q.levels[:0]
	for h := 0; h < n; h++ {
		m := d.Len()
		if m > q.k {
			return fmt.Errorf("%w: quantile level %d has %d items, capacity %d",
				snapshot.ErrCorruptSnapshot, h, m, q.k)
		}
		level := make([]float64, 0, q.k)
		for i := 0; i < m; i++ {
			level = append(level, d.F64())
		}
		q.levels = append(q.levels, level)
	}
	return d.Err()
}
