// Package chaos is the deterministic fault-injection engine behind the
// failure-lifecycle experiments: it turns a seed and a set of
// per-component-class failure rates into a concrete, time-ordered
// schedule of component faults — laser death, MZI stuck-state,
// waveguide-segment loss degradation, inter-wafer fiber cuts, and
// whole-chip failures.
//
// The engine owns no hardware state and applies nothing itself; it only
// produces the Fault vocabulary that the higher layers (wafer health,
// route invalidation, the core recovery loop) consume. Each component
// class draws from its own rng.Split stream, so adding faults of one
// class never perturbs the arrival times of another and every schedule
// is bit-for-bit reproducible from the seed — the same property
// lightpath-vet's determinism analyzer enforces statically.
package chaos

import (
	"fmt"
	"sort"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// Class is a category of hardware fault, one per physical component
// type the simulator models.
type Class int

// Fault classes, ordered roughly by blast radius.
const (
	// LaserDeath kills one of a tile's wavelength lasers; circuits
	// terminating there may no longer fit their width.
	LaserDeath Class = iota
	// MZIStuck freezes one of a tile's 1x3 switches in its current
	// state: established circuits keep working, but the switch can no
	// longer be reprogrammed for new paths.
	MZIStuck
	// WaveguideLoss degrades one tile position of a bus lane by an
	// extra insertion loss (contamination, delamination); circuits
	// crossing it may fall out of their optical budget.
	WaveguideLoss
	// FiberCut severs one inter-wafer trunk row — the bundle of
	// fibers attached to that tile row.
	FiberCut
	// ChipFailure kills an accelerator chip outright; collectives it
	// participates in must be repaired around it.
	ChipFailure
)

// classNames indexes Class values to their stream labels and display
// names.
var classNames = [...]string{
	LaserDeath:    "laser",
	MZIStuck:      "mzi",
	WaveguideLoss: "waveguide",
	FiberCut:      "fiber",
	ChipFailure:   "chip",
}

// NumClasses is the number of fault classes.
const NumClasses = len(classNames)

// String names the class.
func (c Class) String() string {
	if c >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Fault is one scheduled component failure. Which identity fields are
// meaningful depends on Class:
//
//   - LaserDeath, MZIStuck, ChipFailure: Chip (and, for MZIStuck,
//     Switch).
//   - WaveguideLoss: Wafer, Horizontal, Lane, Pos, ExtraLossDB.
//   - FiberCut: Trunk, Row.
type Fault struct {
	// Time is the simulated instant the component fails.
	Time unit.Seconds
	// Class is the component category.
	Class Class
	// Chip identifies the victim chip (equivalently, its tile).
	Chip int
	// Switch is the tile switch index for MZIStuck.
	Switch int
	// Wafer, Horizontal, Lane and Pos identify a bus-lane segment for
	// WaveguideLoss: one tile position of one lane, on horizontal or
	// vertical buses.
	Wafer      int
	Horizontal bool
	Lane, Pos  int
	// ExtraLossDB is the insertion loss the degraded segment adds.
	ExtraLossDB float64
	// Trunk and Row identify the severed fiber bundle for FiberCut.
	Trunk, Row int
}

// String renders the fault for logs and experiment output.
func (f Fault) String() string {
	switch f.Class {
	case LaserDeath:
		return fmt.Sprintf("t=%v laser death at chip %d", f.Time, f.Chip)
	case MZIStuck:
		return fmt.Sprintf("t=%v MZI switch %d stuck at chip %d", f.Time, f.Switch, f.Chip)
	case WaveguideLoss:
		o := "V"
		if f.Horizontal {
			o = "H"
		}
		return fmt.Sprintf("t=%v waveguide +%.2fdB at wafer %d %s lane %d pos %d",
			f.Time, f.ExtraLossDB, f.Wafer, o, f.Lane, f.Pos)
	case FiberCut:
		return fmt.Sprintf("t=%v fiber cut at trunk %d row %d", f.Time, f.Trunk, f.Row)
	case ChipFailure:
		return fmt.Sprintf("t=%v chip %d failed", f.Time, f.Chip)
	}
	return fmt.Sprintf("t=%v unknown fault class %d", f.Time, int(f.Class))
}

// Components describes the population the engine samples victims from;
// it mirrors the rack geometry without importing internal/wafer (chaos
// sits below the hardware layers so any of them can consume it).
type Components struct {
	// Chips is the number of accelerator chips (= tiles) in the rack.
	Chips int
	// SwitchesPerTile is the number of MZI switches per tile.
	SwitchesPerTile int
	// Wafers, Rows and Cols give the wafer count and per-wafer tile
	// grid, identifying bus-lane segments.
	Wafers, Rows, Cols int
	// Trunks is the number of inter-wafer fiber trunks.
	Trunks int
}

// Validate checks that every population the enabled rates sample from
// is non-empty.
func (c Components) Validate() error {
	if c.Chips <= 0 {
		return fmt.Errorf("chaos: no chips to fail")
	}
	if c.SwitchesPerTile <= 0 {
		return fmt.Errorf("chaos: no switches per tile")
	}
	if c.Wafers <= 0 || c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("chaos: bad wafer geometry %dx(%dx%d)", c.Wafers, c.Rows, c.Cols)
	}
	if c.Trunks < 0 {
		return fmt.Errorf("chaos: negative trunk count")
	}
	return nil
}

// Rates configures the engine: the mean time between faults of each
// class across the whole rack (not per component). A zero mean
// disables the class.
type Rates struct {
	// MTBF[c] is class c's rack-wide mean time between faults.
	MTBF [NumClasses]unit.Seconds
	// WaveguideLossDB bounds the extra insertion loss a degraded
	// segment draws, uniform in (0, WaveguideLossDB]. Zero means the
	// default of 3 dB.
	WaveguideLossDB float64
}

// DefaultWaveguideLossDB is the worst-case extra insertion loss a
// degraded waveguide segment adds — enough to matter against the
// link budget's ~3 dB engineering margin.
const DefaultWaveguideLossDB = 3.0

// Engine generates deterministic fault schedules.
type Engine struct {
	comps Components
	rates Rates
	root  *rng.Rand
}

// NewEngine builds an engine whose schedules are a pure function of
// the seed, the component population, and the rates.
func NewEngine(seed uint64, comps Components, rates Rates) (*Engine, error) {
	if err := comps.Validate(); err != nil {
		return nil, err
	}
	for c, m := range rates.MTBF {
		if m < 0 {
			return nil, fmt.Errorf("chaos: negative MTBF for class %v", Class(c))
		}
	}
	if rates.WaveguideLossDB == 0 {
		rates.WaveguideLossDB = DefaultWaveguideLossDB
	}
	if rates.WaveguideLossDB < 0 {
		return nil, fmt.Errorf("chaos: negative waveguide loss bound")
	}
	return &Engine{comps: comps, rates: rates, root: rng.New(seed)}, nil
}

// Schedule generates every fault up to the horizon, sorted by time.
// Each class owns an independent split stream: arrivals are Poisson
// (exponential inter-arrival at the class MTBF) and the victim
// component is drawn uniformly. Ties in time are broken by class and
// then by component identity, so the order is total and reproducible.
func (e *Engine) Schedule(horizon unit.Seconds) []Fault {
	var faults []Fault
	for c := 0; c < NumClasses; c++ {
		class := Class(c)
		mean := e.rates.MTBF[c]
		if mean <= 0 {
			continue
		}
		// Splitting from the (never-advanced) root keeps every class
		// stream independent of how many faults other classes drew.
		r := e.root.Split("chaos/" + classNames[c])
		t := unit.Seconds(0)
		for {
			t += unit.Seconds(r.Exp(float64(mean)))
			if t > horizon {
				break
			}
			faults = append(faults, e.draw(class, t, r))
		}
	}
	sort.Slice(faults, func(i, j int) bool { return faultLess(faults[i], faults[j]) })
	return faults
}

// draw samples the victim component for one fault of the class.
func (e *Engine) draw(class Class, t unit.Seconds, r *rng.Rand) Fault {
	f := Fault{Time: t, Class: class}
	switch class {
	case LaserDeath, ChipFailure:
		f.Chip = r.Intn(e.comps.Chips)
	case MZIStuck:
		f.Chip = r.Intn(e.comps.Chips)
		f.Switch = r.Intn(e.comps.SwitchesPerTile)
	case WaveguideLoss:
		f.Wafer = r.Intn(e.comps.Wafers)
		f.Horizontal = r.Intn(2) == 0
		if f.Horizontal {
			f.Lane = r.Intn(e.comps.Rows)
			f.Pos = r.Intn(e.comps.Cols)
		} else {
			f.Lane = r.Intn(e.comps.Cols)
			f.Pos = r.Intn(e.comps.Rows)
		}
		f.ExtraLossDB = r.Float64() * e.rates.WaveguideLossDB
	case FiberCut:
		if e.comps.Trunks > 0 {
			f.Trunk = r.Intn(e.comps.Trunks)
		}
		f.Row = r.Intn(e.comps.Rows)
	}
	return f
}

// faultLess is the total order Schedule sorts by: time, then class,
// then every identity field. Nothing is left to sort.Slice tie
// instability, so equal-seed runs produce identical schedules.
func faultLess(a, b Fault) bool {
	if a.Time < b.Time {
		return true
	}
	if b.Time < a.Time {
		return false
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	ka := [7]int{a.Chip, a.Switch, a.Wafer, boolInt(a.Horizontal), a.Lane, a.Pos, a.Trunk*1000 + a.Row}
	kb := [7]int{b.Chip, b.Switch, b.Wafer, boolInt(b.Horizontal), b.Lane, b.Pos, b.Trunk*1000 + b.Row}
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	return a.ExtraLossDB < b.ExtraLossDB
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// CountByClass tallies a schedule per class, for experiment summaries.
func CountByClass(faults []Fault) [NumClasses]int {
	var out [NumClasses]int
	for _, f := range faults {
		if f.Class >= 0 && int(f.Class) < NumClasses {
			out[f.Class]++
		}
	}
	return out
}
