package chaos

import (
	"reflect"
	"sort"
	"testing"

	"lightpath/internal/unit"
)

func testComponents() Components {
	return Components{Chips: 64, SwitchesPerTile: 2, Wafers: 2, Rows: 8, Cols: 8, Trunks: 2}
}

func allClassRates() Rates {
	var r Rates
	for c := 0; c < NumClasses; c++ {
		r.MTBF[c] = 50 * unit.Millisecond
	}
	return r
}

func TestScheduleDeterministic(t *testing.T) {
	mk := func() []Fault {
		e, err := NewEngine(7, testComponents(), allClassRates())
		if err != nil {
			t.Fatal(err)
		}
		return e.Schedule(1.0)
	}
	a, b := mk(), mk()
	if len(a) == 0 {
		t.Fatal("no faults scheduled")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
}

func TestScheduleSortedAndInHorizon(t *testing.T) {
	e, err := NewEngine(3, testComponents(), allClassRates())
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 0.5
	faults := e.Schedule(horizon)
	if !sort.SliceIsSorted(faults, func(i, j int) bool { return faultLess(faults[i], faults[j]) }) {
		t.Fatal("schedule not sorted")
	}
	for _, f := range faults {
		if f.Time <= 0 || f.Time > horizon {
			t.Fatalf("fault time %v outside (0, %v]", f.Time, unit.Seconds(horizon))
		}
	}
}

// Disabling one class must not perturb another class's arrivals: each
// class draws from its own split stream.
func TestClassStreamsIndependent(t *testing.T) {
	full, err := NewEngine(11, testComponents(), allClassRates())
	if err != nil {
		t.Fatal(err)
	}
	chipRates := Rates{}
	chipRates.MTBF[ChipFailure] = 50 * unit.Millisecond
	only, err := NewEngine(11, testComponents(), chipRates)
	if err != nil {
		t.Fatal(err)
	}
	var fromFull []Fault
	for _, f := range full.Schedule(1.0) {
		if f.Class == ChipFailure {
			fromFull = append(fromFull, f)
		}
	}
	fromOnly := only.Schedule(1.0)
	if !reflect.DeepEqual(fromFull, fromOnly) {
		t.Fatalf("chip-failure stream changed when other classes were enabled:\n%v\nvs\n%v", fromFull, fromOnly)
	}
}

func TestDrawStaysInPopulation(t *testing.T) {
	comps := testComponents()
	e, err := NewEngine(5, comps, allClassRates())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range e.Schedule(2.0) {
		switch f.Class {
		case LaserDeath, ChipFailure:
			if f.Chip < 0 || f.Chip >= comps.Chips {
				t.Fatalf("%v: chip out of range", f)
			}
		case MZIStuck:
			if f.Switch < 0 || f.Switch >= comps.SwitchesPerTile {
				t.Fatalf("%v: switch out of range", f)
			}
		case WaveguideLoss:
			if f.Wafer < 0 || f.Wafer >= comps.Wafers {
				t.Fatalf("%v: wafer out of range", f)
			}
			if f.ExtraLossDB <= 0 || f.ExtraLossDB > DefaultWaveguideLossDB {
				t.Fatalf("%v: loss out of range", f)
			}
			lanes, positions := comps.Cols, comps.Rows
			if f.Horizontal {
				lanes, positions = comps.Rows, comps.Cols
			}
			if f.Lane < 0 || f.Lane >= lanes || f.Pos < 0 || f.Pos >= positions {
				t.Fatalf("%v: segment out of range", f)
			}
		case FiberCut:
			if f.Trunk < 0 || f.Trunk >= comps.Trunks || f.Row < 0 || f.Row >= comps.Rows {
				t.Fatalf("%v: trunk/row out of range", f)
			}
		}
	}
}

func TestZeroRateDisablesClass(t *testing.T) {
	rates := allClassRates()
	rates.MTBF[FiberCut] = 0
	e, err := NewEngine(9, testComponents(), rates)
	if err != nil {
		t.Fatal(err)
	}
	counts := CountByClass(e.Schedule(1.0))
	if counts[FiberCut] != 0 {
		t.Fatalf("disabled class scheduled %d faults", counts[FiberCut])
	}
	if counts[ChipFailure] == 0 {
		t.Fatal("enabled class scheduled nothing over 20 mean intervals")
	}
}

func TestNewEngineRejectsBadInputs(t *testing.T) {
	if _, err := NewEngine(1, Components{}, Rates{}); err == nil {
		t.Fatal("empty components accepted")
	}
	bad := allClassRates()
	bad.MTBF[0] = -1
	if _, err := NewEngine(1, testComponents(), bad); err == nil {
		t.Fatal("negative MTBF accepted")
	}
	if _, err := NewEngine(1, testComponents(), Rates{WaveguideLossDB: -1}); err == nil {
		t.Fatal("negative loss bound accepted")
	}
}
