// Package topo generalizes the repo's interconnect substrates behind
// one Topology interface: a fabric is a set of endpoints joined by
// dense-integer-id directed links with capacities, over which a
// transfer follows a deterministic link path. The three
// implementations cover the scales the paper and its follow-ons span:
//
//   - TorusFabric adapts internal/torus — the TPUv4-style electrical
//     torus of the paper's §4 scenarios — with dimension-ordered
//     routing.
//   - Rail models the rail-optimized datacenter fabric of the Opus
//     follow-on: R rails × S servers, every server holding one NIC
//     per rail, with non-blocking rail switches and a per-server
//     internal bus for cross-rail hops.
//   - Mesh cascades W LIGHTPATH wafers (internal/wafer geometry) into
//     a full mesh over inter-wafer trunk fibers (§4.2's "10s of
//     fibers across servers").
//
// Link ids are dense in [0, Links()), so they intern trivially as
// netsim resources and index flat arrays in hot loops; AppendPath is
// append-style so callers building millions of flows can share one
// backing arena and keep path construction allocation-free.
package topo

import (
	"fmt"

	"lightpath/internal/unit"
)

// Topology is a fabric of endpoints joined by directed,
// capacity-bearing links. Links are identified by dense integers in
// [0, Links()); endpoints by dense integers in [0, Endpoints()).
// Implementations must be deterministic: the same (src, dst) always
// yields the same path, and link ids never depend on construction
// order or map iteration.
type Topology interface {
	// Name identifies the fabric family ("torus", "rail", "mesh") for
	// CLI flags, CSV headers, and campaign labels.
	Name() string

	// Endpoints returns the number of traffic sources/sinks.
	Endpoints() int

	// Links returns the number of directed links; valid link ids are
	// exactly [0, Links()).
	Links() int

	// LinkCapacity returns the bandwidth of one link.
	LinkCapacity(link int) unit.BitRate

	// AppendPath appends the link ids a transfer from src to dst
	// crosses, in traversal order, and returns the extended slice. A
	// self-path (src == dst) appends nothing. It must not allocate
	// beyond growing buf, so callers can amortize one arena across
	// millions of paths.
	AppendPath(buf []int, src, dst int) []int
}

// Capacities materializes a topology's link capacities as the
// resource-capacity map netsim.Run / netsim.RunSharded consume, keyed
// by dense link id.
func Capacities(t Topology) map[int]unit.BitRate {
	caps := make(map[int]unit.BitRate, t.Links())
	for l := 0; l < t.Links(); l++ {
		caps[l] = t.LinkCapacity(l)
	}
	return caps
}

// checkEndpoint panics on an out-of-range endpoint; fabric AppendPath
// implementations call it so path bugs surface at the call site
// instead of as silent bogus link ids.
func checkEndpoint(t Topology, e int) {
	if e < 0 || e >= t.Endpoints() {
		panic(fmt.Sprintf("topo: endpoint %d out of range [0, %d) on %s", e, t.Endpoints(), t.Name()))
	}
}
