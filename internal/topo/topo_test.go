package topo

import (
	"testing"

	"lightpath/internal/torus"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// testTopologies returns one small instance of each fabric family.
func testTopologies(t *testing.T) []Topology {
	t.Helper()
	tf, err := NewTorusFabric(torus.Shape{3, 3, 3}, unit.GBps(50))
	if err != nil {
		t.Fatal(err)
	}
	rail, err := NewRail(4, 16, unit.GBps(40), unit.GBps(100))
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewMesh(3, wafer.DefaultConfig(), unit.GBps(200))
	if err != nil {
		t.Fatal(err)
	}
	return []Topology{tf, rail, mesh}
}

// TestPathsAreValid sweeps every (src, dst) pair of each small fabric
// and checks the interface contract: link ids in range, self-paths
// empty, non-self paths non-empty, and AppendPath purely appends.
func TestPathsAreValid(t *testing.T) {
	for _, tp := range testTopologies(t) {
		buf := []int{-7} // sentinel: AppendPath must leave existing entries alone
		for src := 0; src < tp.Endpoints(); src++ {
			for dst := 0; dst < tp.Endpoints(); dst++ {
				buf = tp.AppendPath(buf[:1], src, dst)
				path := buf[1:]
				if buf[0] != -7 {
					t.Fatalf("%s: AppendPath overwrote existing buffer entries", tp.Name())
				}
				if src == dst && len(path) != 0 {
					t.Fatalf("%s: self-path %d->%d has %d links", tp.Name(), src, dst, len(path))
				}
				if src != dst && len(path) == 0 {
					t.Fatalf("%s: empty path %d->%d", tp.Name(), src, dst)
				}
				for _, l := range path {
					if l < 0 || l >= tp.Links() {
						t.Fatalf("%s: path %d->%d uses link %d outside [0, %d)", tp.Name(), src, dst, l, tp.Links())
					}
					if tp.LinkCapacity(l) <= 0 {
						t.Fatalf("%s: link %d has non-positive capacity", tp.Name(), l)
					}
				}
			}
		}
	}
}

// TestPathsAreDeterministic re-derives every path and requires
// identical link sequences.
func TestPathsAreDeterministic(t *testing.T) {
	for _, tp := range testTopologies(t) {
		for src := 0; src < tp.Endpoints(); src += 3 {
			for dst := 0; dst < tp.Endpoints(); dst += 3 {
				a := tp.AppendPath(nil, src, dst)
				b := tp.AppendPath(nil, src, dst)
				if len(a) != len(b) {
					t.Fatalf("%s: path %d->%d length changed between calls", tp.Name(), src, dst)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s: path %d->%d link %d changed between calls", tp.Name(), src, dst, i)
					}
				}
			}
		}
	}
}

// TestCapacities checks the netsim capacity map covers exactly the
// dense link-id range.
func TestCapacities(t *testing.T) {
	for _, tp := range testTopologies(t) {
		caps := Capacities(tp)
		if len(caps) != tp.Links() {
			t.Fatalf("%s: capacity map has %d entries, want %d", tp.Name(), len(caps), tp.Links())
		}
		for l := 0; l < tp.Links(); l++ {
			if caps[l] != tp.LinkCapacity(l) {
				t.Fatalf("%s: capacity map disagrees with LinkCapacity on link %d", tp.Name(), l)
			}
		}
	}
}

// TestRailLayout pins the rail fabric's documented link-id layout and
// path shapes.
func TestRailLayout(t *testing.T) {
	r, err := NewRail(2, 3, unit.GBps(40), unit.GBps(100))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Endpoints(), 6; got != want {
		t.Fatalf("Endpoints() = %d, want %d", got, want)
	}
	if got, want := r.Links(), 15; got != want {
		t.Fatalf("Links() = %d, want %d", got, want)
	}
	if got := r.Endpoint(1, 2); got != 5 {
		t.Fatalf("Endpoint(1,2) = %d, want 5 (rail-major)", got)
	}
	// Same rail: up(src), down(dst).
	got := r.AppendPath(nil, r.Endpoint(0, 0), r.Endpoint(0, 2))
	want := []int{0, 6 + 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("same-rail path = %v, want %v", got, want)
	}
	// Cross rail: bus(s1), up(r2, s1), down(dst).
	got = r.AppendPath(nil, r.Endpoint(0, 1), r.Endpoint(1, 2))
	want = []int{12 + 1, r.Endpoint(1, 1), 6 + r.Endpoint(1, 2)}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("cross-rail path = %v, want %v", got, want)
	}
	// Bus links carry the bus bandwidth, NIC links the rail bandwidth.
	if r.LinkCapacity(12) != unit.GBps(100) || r.LinkCapacity(0) != unit.GBps(40) {
		t.Fatal("rail link capacities do not follow the documented layout")
	}
}

// TestMeshLayout pins the mesh's trunk-id packing and path shapes.
func TestMeshLayout(t *testing.T) {
	cfg := wafer.DefaultConfig()
	m, err := NewMesh(3, cfg, unit.GBps(200))
	if err != nil {
		t.Fatal(err)
	}
	tiles := cfg.Tiles()
	e := 3 * tiles
	if got, want := m.Links(), 2*e+6; got != want {
		t.Fatalf("Links() = %d, want %d", got, want)
	}
	// Trunk ids pack ordered pairs densely, skipping self-pairs.
	seen := map[int]bool{}
	for w1 := 0; w1 < 3; w1++ {
		for w2 := 0; w2 < 3; w2++ {
			if w1 == w2 {
				continue
			}
			id := m.Trunk(w1, w2)
			if id < 2*e || id >= m.Links() {
				t.Fatalf("Trunk(%d,%d) = %d outside trunk range", w1, w2, id)
			}
			if seen[id] {
				t.Fatalf("Trunk(%d,%d) = %d collides with another pair", w1, w2, id)
			}
			seen[id] = true
		}
	}
	// Same wafer: up, down. Cross wafer: up, trunk, down.
	if p := m.AppendPath(nil, 0, 1); len(p) != 2 || p[0] != 0 || p[1] != e+1 {
		t.Fatalf("same-wafer path = %v", p)
	}
	src, dst := 1, 2*tiles+4
	p := m.AppendPath(nil, src, dst)
	if len(p) != 3 || p[0] != src || p[1] != m.Trunk(0, 2) || p[2] != e+dst {
		t.Fatalf("cross-wafer path = %v", p)
	}
	if m.LinkCapacity(0) != cfg.TileEgress() {
		t.Fatal("tile links must carry TileEgress capacity")
	}
	if m.LinkCapacity(m.Trunk(0, 1)) != unit.GBps(200) {
		t.Fatal("trunk links must carry the trunk bandwidth")
	}
}

// TestTorusFabricMatchesDOR checks the adapter's paths are exactly
// the torus's dimension-ordered routes.
func TestTorusFabricMatchesDOR(t *testing.T) {
	f, err := NewTorusFabric(torus.Shape{4, 4}, unit.GBps(50))
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < f.Endpoints(); src++ {
		for dst := 0; dst < f.Endpoints(); dst++ {
			ids := f.AppendPath(nil, src, dst)
			raw := f.Torus().DORPath(src, dst)
			if len(ids) != len(raw) {
				t.Fatalf("path %d->%d: %d ids vs %d torus links", src, dst, len(ids), len(raw))
			}
			for i, id := range ids {
				if f.Link(id) != raw[i] {
					t.Fatalf("path %d->%d hop %d: id %d maps to %v, want %v", src, dst, i, id, f.Link(id), raw[i])
				}
			}
		}
	}
}

// TestConstructorValidation checks bad geometry is rejected.
func TestConstructorValidation(t *testing.T) {
	if _, err := NewRail(0, 4, unit.GBps(1), unit.GBps(1)); err == nil {
		t.Error("NewRail accepted zero rails")
	}
	if _, err := NewRail(2, 2, 0, unit.GBps(1)); err == nil {
		t.Error("NewRail accepted zero rail bandwidth")
	}
	if _, err := NewMesh(0, wafer.DefaultConfig(), unit.GBps(1)); err == nil {
		t.Error("NewMesh accepted zero wafers")
	}
	if _, err := NewMesh(2, wafer.Config{}, unit.GBps(1)); err == nil {
		t.Error("NewMesh accepted an invalid wafer config")
	}
	if _, err := NewTorusFabric(torus.Shape{}, unit.GBps(1)); err == nil {
		t.Error("NewTorusFabric accepted an empty shape")
	}
	if _, err := NewTorusFabric(torus.Shape{2, 2}, 0); err == nil {
		t.Error("NewTorusFabric accepted zero bandwidth")
	}
}
