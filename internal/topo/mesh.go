package topo

import (
	"fmt"

	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// Mesh cascades W LIGHTPATH wafers into a full mesh: every wafer pair
// is joined by a dedicated trunk of attached fibers in each direction
// (§4.2's "10s of fibers across servers"). Endpoints are tiles;
// endpoint id = wafer*TilesPerWafer() + tile. Intra-wafer reach is
// modeled through each tile's laser-limited egress/ingress (the wafer
// fabric itself is circuit-switched and non-blocking once lasers are
// committed), so a path is:
//
//	same wafer:  [up(src), down(dst)]
//	cross wafer: [up(src), trunk(w1 -> w2), down(dst)]
//
// Link-id layout, with E = Endpoints() and W = Wafers():
//
//	up(e)    = e                          tile egress    capacity TileEgress
//	down(e)  = E + e                      tile ingress   capacity TileEgress
//	trunk    = 2E + w1*(W-1) + i          wafer trunk    capacity TrunkBW
//
// where i counts w2 over [0, W) skipping w1 — ordered wafer pairs
// pack densely with no self-trunk ids.
type Mesh struct {
	wafers  int
	cfg     wafer.Config
	egress  unit.BitRate
	trunkBW unit.BitRate
}

// NewMesh constructs a full mesh of wafers with the given per-wafer
// geometry and per-direction trunk bandwidth.
func NewMesh(wafers int, cfg wafer.Config, trunkBW unit.BitRate) (*Mesh, error) {
	if wafers <= 0 {
		return nil, fmt.Errorf("topo: need at least one wafer, got %d", wafers)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trunkBW <= 0 {
		return nil, fmt.Errorf("topo: non-positive trunk bandwidth")
	}
	return &Mesh{wafers: wafers, cfg: cfg, egress: cfg.TileEgress(), trunkBW: trunkBW}, nil
}

// Name returns "mesh".
func (m *Mesh) Name() string { return "mesh" }

// Wafers returns the wafer count.
func (m *Mesh) Wafers() int { return m.wafers }

// TilesPerWafer returns the tiles (endpoints) per wafer.
func (m *Mesh) TilesPerWafer() int { return m.cfg.Tiles() }

// Endpoints returns Wafers() * TilesPerWafer().
func (m *Mesh) Endpoints() int { return m.wafers * m.cfg.Tiles() }

// Links returns 2*Endpoints() + Wafers()*(Wafers()-1): an up and a
// down link per tile plus one trunk per ordered wafer pair.
func (m *Mesh) Links() int { return 2*m.Endpoints() + m.wafers*(m.wafers-1) }

// LinkCapacity returns TileEgress for tile up/down links and the
// trunk bandwidth for inter-wafer trunks.
func (m *Mesh) LinkCapacity(link int) unit.BitRate {
	if link < 2*m.Endpoints() {
		return m.egress
	}
	return m.trunkBW
}

// Trunk returns the link id of the w1 -> w2 trunk. It panics when
// w1 == w2 or either wafer is out of range.
func (m *Mesh) Trunk(w1, w2 int) int {
	if w1 == w2 || w1 < 0 || w2 < 0 || w1 >= m.wafers || w2 >= m.wafers {
		panic(fmt.Sprintf("topo: bad trunk %d -> %d on %d-wafer mesh", w1, w2, m.wafers))
	}
	i := w2
	if w2 > w1 {
		i--
	}
	return 2*m.Endpoints() + w1*(m.wafers-1) + i
}

// AppendPath appends the links of the route from src to dst: tile
// egress, the inter-wafer trunk when the wafers differ, tile ingress.
func (m *Mesh) AppendPath(buf []int, src, dst int) []int {
	checkEndpoint(m, src)
	checkEndpoint(m, dst)
	if src == dst {
		return buf
	}
	e := m.Endpoints()
	t := m.cfg.Tiles()
	w1, w2 := src/t, dst/t
	buf = append(buf, src)
	if w1 != w2 {
		buf = append(buf, m.Trunk(w1, w2))
	}
	return append(buf, e+dst)
}
