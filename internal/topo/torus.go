package topo

import (
	"fmt"

	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// TorusFabric adapts internal/torus — the paper's TPUv4-style
// electrical torus — to the Topology interface. Endpoints are chips
// (the torus's dense chip index); links are the torus's directed
// adjacent-chip links, assigned dense ids by their position in
// torus.AllLinks() enumeration order (a pure function of the shape,
// so ids are stable across constructions). Paths are dimension-ordered
// routes (torus.DORPath), the standard minimal routing the repo's
// congestion model already uses.
type TorusFabric struct {
	t      *torus.Torus
	linkBW unit.BitRate
	links  []torus.Link
	ids    map[torus.Link]int
}

// NewTorusFabric wraps a torus of the given shape with uniform
// per-link bandwidth.
func NewTorusFabric(shape torus.Shape, linkBW unit.BitRate) (*TorusFabric, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if linkBW <= 0 {
		return nil, fmt.Errorf("topo: non-positive torus link bandwidth")
	}
	t := torus.New(shape)
	links := t.AllLinks()
	ids := make(map[torus.Link]int, len(links))
	for i, l := range links {
		ids[l] = i
	}
	return &TorusFabric{t: t, linkBW: linkBW, links: links, ids: ids}, nil
}

// Name returns "torus".
func (f *TorusFabric) Name() string { return "torus" }

// Torus returns the underlying torus geometry.
func (f *TorusFabric) Torus() *torus.Torus { return f.t }

// Endpoints returns the chip count.
func (f *TorusFabric) Endpoints() int { return f.t.Size() }

// Links returns the directed link count.
func (f *TorusFabric) Links() int { return len(f.links) }

// LinkCapacity returns the uniform per-link bandwidth.
func (f *TorusFabric) LinkCapacity(int) unit.BitRate { return f.linkBW }

// Link returns the torus link behind a dense link id.
func (f *TorusFabric) Link(id int) torus.Link { return f.links[id] }

// AppendPath appends the dense link ids of the dimension-ordered
// route from src to dst.
func (f *TorusFabric) AppendPath(buf []int, src, dst int) []int {
	checkEndpoint(f, src)
	checkEndpoint(f, dst)
	for _, l := range f.t.DORPath(src, dst) {
		buf = append(buf, f.ids[l])
	}
	return buf
}
