package topo

import (
	"fmt"

	"lightpath/internal/unit"
)

// Rail is the rail-optimized fabric of the Opus follow-on: Rails
// parallel flat networks ("rails"), each a non-blocking switch
// connecting one NIC from every server, and Servers servers each
// holding one NIC per rail. The endpoint (r, s) is server s's NIC on
// rail r; accelerators co-located in a server reach a different rail
// over the server's internal bus (PCIe/NVLink in Opus, the photonic
// server-scale substrate in this repo's reading of the paper).
//
// Link-id layout, with E = Rails*Servers endpoints:
//
//	up(e)   = e        NIC e -> its rail switch   capacity RailBW
//	down(e) = E + e    rail switch -> NIC e       capacity RailBW
//	bus(s)  = 2E + s   server s internal bus      capacity BusBW
//
// Paths: a same-rail transfer crosses [up(src), down(dst)] — the rail
// switch itself is non-blocking, so only the two NIC links carry the
// flow. A cross-rail transfer from (r1, s1) to (r2, s2) first crosses
// server s1's internal bus to the co-located NIC on rail r2, then
// rides rail r2: [bus(s1), up(r2, s1), down(dst)].
type Rail struct {
	rails, servers int
	railBW, busBW  unit.BitRate
}

// NewRail constructs a rail fabric of rails × servers endpoints with
// the given per-NIC rail bandwidth and per-server bus bandwidth.
func NewRail(rails, servers int, railBW, busBW unit.BitRate) (*Rail, error) {
	switch {
	case rails <= 0 || servers <= 0:
		return nil, fmt.Errorf("topo: bad rail fabric %d rails x %d servers", rails, servers)
	case railBW <= 0 || busBW <= 0:
		return nil, fmt.Errorf("topo: non-positive rail fabric bandwidth")
	}
	return &Rail{rails: rails, servers: servers, railBW: railBW, busBW: busBW}, nil
}

// Name returns "rail".
func (r *Rail) Name() string { return "rail" }

// Rails returns the number of rails.
func (r *Rail) Rails() int { return r.rails }

// Servers returns the number of servers (endpoints per rail).
func (r *Rail) Servers() int { return r.servers }

// Endpoints returns Rails() * Servers(); endpoint ids are rail-major:
// id = rail*Servers() + server.
func (r *Rail) Endpoints() int { return r.rails * r.servers }

// Endpoint returns the id of server s's NIC on rail rl.
func (r *Rail) Endpoint(rl, s int) int { return rl*r.servers + s }

// Links returns 2*Endpoints() + Servers(): an up and a down link per
// NIC plus one internal bus per server.
func (r *Rail) Links() int { return 2*r.Endpoints() + r.servers }

// LinkCapacity returns RailBW for up/down NIC links and BusBW for
// server buses.
func (r *Rail) LinkCapacity(link int) unit.BitRate {
	if link < 2*r.Endpoints() {
		return r.railBW
	}
	return r.busBW
}

// AppendPath appends the links of the deterministic route from src to
// dst. Endpoint ids are rail-major; see the type comment for the
// path shapes.
func (r *Rail) AppendPath(buf []int, src, dst int) []int {
	checkEndpoint(r, src)
	checkEndpoint(r, dst)
	if src == dst {
		return buf
	}
	e := r.Endpoints()
	r1, s1 := src/r.servers, src%r.servers
	r2 := dst / r.servers
	if r1 == r2 {
		return append(buf, src, e+dst)
	}
	return append(buf, 2*e+s1, r2*r.servers+s1, e+dst)
}
