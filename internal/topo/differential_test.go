package topo

import (
	"testing"

	"lightpath/internal/engine"
	"lightpath/internal/netsim"
	"lightpath/internal/rng"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// This file carries the cross-topology leg of the sharded-solver
// differential contract: on every Topology implementation, a
// component-parallel netsim.RunSharded must be byte-identical to a
// sequential one, and each connected component's results must be
// bit-identical to netsim.Run — the solver the existing netsim
// differential tests hold bit-for-bit to the fairRates oracle — on
// that component's flows alone.

// genTraffic draws random transfers over a topology's paths.
func genTraffic(tp Topology, seed uint64, n int) []netsim.Flow[int] {
	r := rng.New(seed).Split("topo-differential-" + tp.Name())
	flows := make([]netsim.Flow[int], 0, n)
	for i := 0; i < n; i++ {
		src := r.Intn(tp.Endpoints())
		dst := r.Intn(tp.Endpoints())
		if src == dst {
			dst = (dst + 1) % tp.Endpoints()
		}
		flows = append(flows, netsim.Flow[int]{
			Bytes: unit.Bytes(1 + r.Intn(1<<22)),
			Via:   tp.AppendPath(nil, src, dst),
		})
	}
	return flows
}

// flowComponents recomputes the sharing-graph partition of a flow set
// with a map-based union-find, independently of the solver's.
func flowComponents(flows []netsim.Flow[int]) (compOfFlow []int, nComp int) {
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	for _, f := range flows {
		if f.Bytes == 0 || len(f.Via) == 0 {
			continue
		}
		r0 := find(f.Via[0])
		for _, l := range f.Via[1:] {
			other := find(l)
			if other != r0 {
				if other < r0 {
					r0, other = other, r0
				}
				parent[other] = r0
			}
		}
	}
	compOfFlow = make([]int, len(flows))
	label := map[int]int{}
	for i, f := range flows {
		if f.Bytes == 0 || len(f.Via) == 0 {
			compOfFlow[i] = -1
			continue
		}
		root := find(f.Via[0])
		c, ok := label[root]
		if !ok {
			c = nComp
			label[root] = c
			nComp++
		}
		compOfFlow[i] = c
	}
	return compOfFlow, nComp
}

// TestShardedSolveAcrossTopologies runs the differential stack on
// random traffic over each fabric family.
func TestShardedSolveAcrossTopologies(t *testing.T) {
	tf, err := NewTorusFabric(torus.Shape{4, 4}, unit.GBps(50))
	if err != nil {
		t.Fatal(err)
	}
	rail, err := NewRail(4, 32, unit.GBps(40), unit.GBps(100))
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewMesh(4, wafer.DefaultConfig(), unit.GBps(200))
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []Topology{tf, rail, mesh} {
		tp := tp
		t.Run(tp.Name(), func(t *testing.T) {
			caps := Capacities(tp)
			for seed := uint64(0); seed < 20; seed++ {
				flows := genTraffic(tp, seed, 200)

				prevPar := engine.SetParallel(false)
				var seqSim netsim.Sim[int]
				seqRes, seqErr := seqSim.RunSharded(flows, caps)
				engine.SetParallel(true)
				prevW := engine.SetWorkers(4)
				var parSim netsim.Sim[int]
				parRes, parErr := parSim.RunSharded(flows, caps)
				engine.SetParallel(prevPar)
				engine.SetWorkers(prevW)

				if seqErr != nil || parErr != nil {
					t.Fatalf("seed %d: sequential err %v, parallel err %v", seed, seqErr, parErr)
				}
				if seqRes.Makespan != parRes.Makespan {
					t.Fatalf("seed %d: makespan diverged: sequential %v, parallel %v", seed, seqRes.Makespan, parRes.Makespan)
				}
				for i := range flows {
					if seqRes.FlowEnd[i] != parRes.FlowEnd[i] {
						t.Fatalf("seed %d flow %d: end diverged: sequential %v, parallel %v", seed, i, seqRes.FlowEnd[i], parRes.FlowEnd[i])
					}
					if seqRes.Delivered[i] != parRes.Delivered[i] {
						t.Fatalf("seed %d flow %d: delivered diverged", seed, i)
					}
				}

				// Each component bit-identical to the oracle-anchored
				// solver on its flows alone.
				compOfFlow, nComp := flowComponents(flows)
				for c := 0; c < nComp; c++ {
					var sub []netsim.Flow[int]
					var idx []int
					for i := range flows {
						if compOfFlow[i] == c {
							sub = append(sub, flows[i])
							idx = append(idx, i)
						}
					}
					want, err := netsim.Run(sub, caps)
					if err != nil {
						t.Fatalf("seed %d component %d: %v", seed, c, err)
					}
					for j, i := range idx {
						if seqRes.FlowEnd[i] != want.FlowEnd[j] {
							t.Fatalf("seed %d component %d flow %d: sharded %v, solo solve %v",
								seed, c, i, seqRes.FlowEnd[i], want.FlowEnd[j])
						}
						if seqRes.Delivered[i] != want.Delivered[j] {
							t.Fatalf("seed %d component %d flow %d: delivered diverged from solo solve", seed, c, i)
						}
					}
				}
			}
		})
	}
}
