// Package failure implements the paper's §4.2: what happens when an
// accelerator chip fails in a multi-tenant direct-connect deployment.
// It models the electrical repair problem (splice a free chip into the
// victim slice's broken rings without congesting anyone — Figures 6a
// and 6b show this is generally impossible), the optical repair
// (establish dedicated non-overlapping circuits to the replacement —
// Figure 7), and the blast-radius comparison between TPUv4's
// rack-granularity fault policy and LIGHTPATH's server-granularity
// one.
package failure

import (
	"fmt"

	"lightpath/internal/torus"
)

// Fabric is the multi-rack electrical fault-analysis graph: per-rack
// allocations, per-column OCS splices along one dimension, failed
// chips, and the link traffic imposed by every slice's collectives.
// Chips are global: rack*rackSize + local.
type Fabric struct {
	t      *torus.Torus
	allocs []*torus.Allocation
	// spliceDim is the dimension whose wrap-around faces go through
	// OCSes (Z for TPUv4).
	spliceDim int
	// splices maps a column (identified by its z=0 local chip and
	// rack) to the partner rack its +Z face is spliced to; unspliced
	// columns wrap onto their own rack.
	splices map[colKey]int
	failed  map[int]bool
}

type colKey struct {
	rack int
	col  int // local chip index at spliceDim coordinate 0
}

// NewFabric builds the analysis graph. All racks share one torus
// geometry; allocs[i] is rack i's tenant allocation.
func NewFabric(t *torus.Torus, allocs []*torus.Allocation, spliceDim int) (*Fabric, error) {
	if len(allocs) == 0 {
		return nil, fmt.Errorf("failure: no racks")
	}
	if spliceDim < 0 || spliceDim >= t.Dims() {
		return nil, fmt.Errorf("failure: splice dimension %d out of range", spliceDim)
	}
	for i, a := range allocs {
		if a.Torus().Size() != t.Size() {
			return nil, fmt.Errorf("failure: rack %d allocation on a different torus", i)
		}
	}
	return &Fabric{
		t:         t,
		allocs:    allocs,
		spliceDim: spliceDim,
		splices:   make(map[colKey]int),
		failed:    make(map[int]bool),
	}, nil
}

// Racks returns the number of racks.
func (f *Fabric) Racks() int { return len(f.allocs) }

// RackSize returns chips per rack.
func (f *Fabric) RackSize() int { return f.t.Size() }

// Size returns total chips.
func (f *Fabric) Size() int { return len(f.allocs) * f.t.Size() }

// Global converts (rack, local chip) to a global chip.
func (f *Fabric) Global(rack, chip int) int { return rack*f.t.Size() + chip }

// Split converts a global chip to (rack, local chip).
func (f *Fabric) Split(g int) (rack, chip int) { return g / f.t.Size(), g % f.t.Size() }

// Fail marks a global chip as failed.
func (f *Fabric) Fail(g int) { f.failed[g] = true }

// Failed reports whether a global chip is failed.
func (f *Fabric) Failed(g int) bool { return f.failed[g] }

// columnOf returns a chip's column key.
func (f *Fabric) columnOf(rack, chip int) colKey {
	c := f.t.Coord(chip)
	c[f.spliceDim] = 0
	return colKey{rack: rack, col: f.t.Index(c)}
}

// SpliceColumn programs the OCSes so the column through local chip
// col (any chip on the column identifies it) forms a two-rack loop:
// rackA's +Z face chip connects to rackB's -Z face chip and vice
// versa. It fails if either column is already spliced, or if either
// column's self-wrap link currently carries ring traffic — splicing
// would break a tenant's live ring, which is exactly the congestion
// constraint of Figure 6b.
func (f *Fabric) SpliceColumn(rackA, rackB, col int, busy torus.LinkUse) error {
	if rackA == rackB {
		return fmt.Errorf("failure: cannot splice a rack to itself")
	}
	for _, rack := range [2]int{rackA, rackB} {
		key := f.columnOf(rack, col)
		if _, ok := f.splices[key]; ok {
			return fmt.Errorf("failure: rack %d column already spliced", rack)
		}
		if f.wrapLinkBusy(rack, col, busy) {
			return fmt.Errorf("failure: rack %d column wrap link carries ring traffic", rack)
		}
	}
	f.splices[f.columnOf(rackA, col)] = rackB
	f.splices[f.columnOf(rackB, col)] = rackA
	return nil
}

// wrapLinkBusy reports whether the column's self-wrap link (either
// orientation) is in the busy set.
func (f *Fabric) wrapLinkBusy(rack, col int, busy torus.LinkUse) bool {
	c := f.t.Coord(col)
	c[f.spliceDim] = f.t.Extent(f.spliceDim) - 1
	top := f.Global(rack, f.t.Index(c))
	c[f.spliceDim] = 0
	bottom := f.Global(rack, f.t.Index(c))
	if busy[torus.Link{From: top, To: bottom}] > 0 {
		return true
	}
	return busy[torus.Link{From: bottom, To: top}] > 0
}

// Neighbors returns the chips adjacent to g, honoring OCS splices on
// the splice dimension. Failed chips still appear (the pathfinder
// filters them; the topology does not change when a chip dies).
func (f *Fabric) Neighbors(g int) []int {
	rack, chip := f.Split(g)
	co := f.t.Coord(chip)
	var out []int
	for d := 0; d < f.t.Dims(); d++ {
		e := f.t.Extent(d)
		if e == 1 {
			continue
		}
		for _, dir := range [2]int{+1, -1} {
			v := co[d] + dir
			switch {
			case d == f.spliceDim && v >= e:
				out = append(out, f.spliceTarget(rack, chip, 0))
			case d == f.spliceDim && v < 0:
				out = append(out, f.spliceTarget(rack, chip, e-1))
			default:
				nc := co.Clone()
				nc[d] = v
				out = append(out, f.Global(rack, f.t.Index(nc)))
			}
			if e == 2 {
				break // +1 and -1 coincide
			}
		}
	}
	return out
}

// spliceTarget resolves the chip reached when crossing the splice
// dimension's face from (rack, chip), landing at coordinate land on
// the partner (or same) rack.
func (f *Fabric) spliceTarget(rack, chip, land int) int {
	targetRack := rack
	if partner, ok := f.splices[f.columnOf(rack, chip)]; ok {
		targetRack = partner
	}
	c := f.t.Coord(chip)
	c[f.spliceDim] = land
	return f.Global(targetRack, f.t.Index(c))
}

// Owner returns the slice owning a global chip (nil when free).
func (f *Fabric) Owner(g int) *torus.Slice {
	rack, chip := f.Split(g)
	return f.allocs[rack].OwnerSlice(chip)
}

// FreeChips returns all free, non-failed global chips.
func (f *Fabric) FreeChips() []int {
	var out []int
	for rack, a := range f.allocs {
		for _, chip := range a.FreeChips() {
			g := f.Global(rack, chip)
			if !f.failed[g] {
				out = append(out, g)
			}
		}
	}
	return out
}
