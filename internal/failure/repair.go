package failure

import (
	"container/heap"
	"errors"
	"fmt"

	"lightpath/internal/torus"
)

// ErrNoCongestionFreeRepair reports that no replacement chip can be
// spliced into the broken rings without congestion — the Figure 6a/6b
// outcome for electrical interconnects.
var ErrNoCongestionFreeRepair = errors.New("failure: no congestion-free electrical repair exists")

// RepairPath is one directed path of an electrical repair.
type RepairPath struct {
	From, To int
	Links    []torus.Link
	// Congestion counts the busy links reused and foreign chips
	// forwarded through; 0 means congestion-free.
	Congestion int
}

// ElectricalPlan is the outcome of attempting an electrical repair.
type ElectricalPlan struct {
	Replacement int
	Paths       []RepairPath
	// Congestion is the total over paths; a congestion-free plan has 0.
	Congestion int
}

// pathCost weights for the Dijkstra search: reusing a busy link or
// forwarding through another tenant's chip each cost one congestion
// unit; hops are free (the fluid model has no per-hop latency).
type searchContext struct {
	f       *Fabric
	busy    torus.LinkUse
	victim  *torus.Slice
	rack    int // victim's rack, for own-chip identification
	extra   torus.LinkUse
	maxCost int
}

// ownChip reports whether the global chip belongs to the victim slice.
func (sc *searchContext) ownChip(g int) bool {
	rack, chip := sc.f.Split(g)
	if rack != sc.rack {
		return false
	}
	return sc.victim.ContainsIndex(sc.f.t, chip)
}

// linkCost returns the congestion units of crossing l.
func (sc *searchContext) linkCost(l torus.Link) int {
	cost := 0
	if sc.busy[l] > 0 || sc.busy[l.Reverse()] > 0 {
		cost++
	}
	if sc.extra[l] > 0 || sc.extra[l.Reverse()] > 0 {
		cost++
	}
	return cost
}

// nodeCost returns the congestion units of forwarding through g as an
// intermediate hop: free chips and the victim's own chips forward for
// free in congestion terms... except they do not: the paper's §4.2
// observes that "traffic not destined for a TPU must be forwarded,
// consuming its bandwidth". We charge foreign tenants' chips one unit
// and allow free/own chips (whose bandwidth the victim may leg
// itimately consume) at zero.
func (sc *searchContext) nodeCost(g int) int {
	if sc.f.Failed(g) {
		return sc.maxCost + 1 // dead chips never forward
	}
	if owner := sc.f.Owner(g); owner != nil && owner != sc.victim {
		return 1
	}
	return 0
}

// item is a priority-queue entry.
type item struct {
	node, cost int
}

type pq []item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// findPath runs Dijkstra from src to dst minimizing congestion units,
// rejecting paths above maxCost. It returns the path's links and its
// congestion, or an error when unreachable.
func (sc *searchContext) findPath(src, dst int) (RepairPath, error) {
	const inf = int(^uint(0) >> 1)
	dist := map[int]int{src: 0}
	prev := map[int]int{}
	q := &pq{{node: src, cost: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(item)
		if cur.cost > dist[cur.node] {
			continue
		}
		if cur.node == dst {
			break
		}
		for _, nb := range sc.f.Neighbors(cur.node) {
			l := torus.Link{From: cur.node, To: nb}
			cost := cur.cost + sc.linkCost(l)
			if nb != dst {
				cost += sc.nodeCost(nb)
			} else if sc.f.Failed(nb) {
				continue
			}
			if cost > sc.maxCost {
				continue
			}
			if d, ok := dist[nb]; !ok || cost < d {
				dist[nb] = cost
				prev[nb] = cur.node
				heap.Push(q, item{node: nb, cost: cost})
			}
		}
	}
	d, ok := dist[dst]
	if !ok || d == inf {
		return RepairPath{}, fmt.Errorf("failure: no path %d -> %d within congestion budget %d", src, dst, sc.maxCost)
	}
	var links []torus.Link
	for at := dst; at != src; at = prev[at] {
		links = append(links, torus.Link{From: prev[at], To: at})
	}
	// Reverse into forward order.
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return RepairPath{From: src, To: dst, Links: links, Congestion: d}, nil
}

// ElectricalRepair attempts to splice a free chip into every broken
// ring of the victim without congestion: all repair paths must avoid
// busy links, avoid foreign tenants' chips, and be mutually
// link-disjoint. If no congestion-free plan exists (the paper's
// claim), it returns ErrNoCongestionFreeRepair along with the best
// congested plan found (minimum total congestion units) for
// diagnosis — the "any new traffic will cause congestion" of §4.2.
func (f *Fabric) ElectricalRepair(rack, failedLocal int, maxDiagnosticCongestion int) (*ElectricalPlan, error) {
	victim := f.allocs[rack].OwnerSlice(failedLocal)
	if victim == nil {
		return nil, fmt.Errorf("failure: failed chip %d is free", failedLocal)
	}
	f.Fail(f.Global(rack, failedLocal))
	eps, err := f.RepairEndpoints(rack, failedLocal)
	if err != nil {
		return nil, err
	}
	busy := f.BusyLinks()
	free := f.FreeChips()
	if len(free) == 0 {
		return nil, fmt.Errorf("failure: no free chips to repair with")
	}

	var best *ElectricalPlan
	for _, budget := range []int{0, maxDiagnosticCongestion} {
		if budget > 0 && best != nil {
			break // congestion-free plan already found
		}
		for _, repl := range free {
			plan, ok := f.tryPlan(rack, victim, eps, repl, busy, budget)
			if !ok {
				continue
			}
			if best == nil || plan.Congestion < best.Congestion {
				best = plan
			}
			if plan.Congestion == 0 {
				return plan, nil
			}
		}
	}
	if best != nil {
		return best, ErrNoCongestionFreeRepair
	}
	return nil, ErrNoCongestionFreeRepair
}

// tryPlan routes Pred->repl and repl->Succ for every endpoint pair,
// keeping the paths mutually link-disjoint.
func (f *Fabric) tryPlan(rack int, victim *torus.Slice, eps []RepairEndpoint, repl int, busy torus.LinkUse, budget int) (*ElectricalPlan, bool) {
	sc := &searchContext{f: f, busy: busy, victim: victim, rack: rack, extra: torus.LinkUse{}, maxCost: budget}
	plan := &ElectricalPlan{Replacement: repl}
	for _, ep := range eps {
		for _, leg := range [2][2]int{{ep.Pred, repl}, {repl, ep.Succ}} {
			sc.maxCost = budget - plan.Congestion
			p, err := sc.findPath(leg[0], leg[1])
			if err != nil {
				return nil, false
			}
			sc.extra.Add(p.Links)
			plan.Paths = append(plan.Paths, p)
			plan.Congestion += p.Congestion
		}
	}
	return plan, true
}
