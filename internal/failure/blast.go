package failure

import (
	"lightpath/internal/torus"
)

// This file quantifies the paper's blast-radius argument (§4.2):
// "the current policy ... handles faults at rack granularity, leading
// to a large blast radius", versus "server-scale photonics enables
// routing around TPU chip failures to reduce the blast radius of a
// single chip failure to only the multi-accelerator server containing
// the failed chip."

// ElectricalBlastRadius returns the chips affected by a single chip
// failure under the TPUv4 policy ([60] in the paper): the job is
// migrated away from the entire rack, so every chip of the failed
// chip's rack is impacted.
func ElectricalBlastRadius(c *torus.Cluster, failedGlobal int) []int {
	rack, _ := c.Split(failedGlobal)
	out := make([]int, 0, c.RackSize())
	for chip := 0; chip < c.RackSize(); chip++ {
		out = append(out, c.GlobalID(rack, chip))
	}
	return out
}

// OpticalBlastRadius returns the chips affected under server-scale
// photonic repair: optical circuits route around the failure, so only
// the multi-accelerator server containing the failed chip is
// impacted.
func OpticalBlastRadius(c *torus.Cluster, failedGlobal int) []int {
	rack, chip := c.Split(failedGlobal)
	server := c.ServerOf(chip)
	var out []int
	for _, sc := range c.ServerChips(server) {
		out = append(out, c.GlobalID(rack, sc))
	}
	return out
}

// BlastRadiusStats summarizes a failure sweep.
type BlastRadiusStats struct {
	Failures       int
	ElectricalMean float64
	OpticalMean    float64
	// Ratio is ElectricalMean / OpticalMean — the blast-radius
	// shrinkage factor (16x for the paper's 64-chip racks of 4-chip
	// servers).
	Ratio float64
}

// SweepBlastRadius fails every chip of the cluster in turn and
// averages the two policies' blast radii.
func SweepBlastRadius(c *torus.Cluster) BlastRadiusStats {
	stats := BlastRadiusStats{Failures: c.Size()}
	var elec, opt int
	for g := 0; g < c.Size(); g++ {
		elec += len(ElectricalBlastRadius(c, g))
		opt += len(OpticalBlastRadius(c, g))
	}
	stats.ElectricalMean = float64(elec) / float64(c.Size())
	stats.OpticalMean = float64(opt) / float64(c.Size())
	if stats.OpticalMean > 0 {
		stats.Ratio = stats.ElectricalMean / stats.OpticalMean
	}
	return stats
}
