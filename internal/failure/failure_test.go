package failure

import (
	"errors"
	"testing"

	"lightpath/internal/alloc"
	"lightpath/internal/collective"
	"lightpath/internal/phy"
	"lightpath/internal/route"
	"lightpath/internal/torus"
)

// fig6aFabric builds the Figure 6a analysis fabric (one rack).
func fig6aFabric(t *testing.T) (*Fabric, *alloc.Fig6aScenario) {
	t.Helper()
	sc, err := alloc.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(sc.Torus, []*torus.Allocation{sc.Alloc}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return f, sc
}

// fig6bFabric builds the Figure 6b analysis fabric (two racks).
func fig6bFabric(t *testing.T) (*Fabric, *alloc.Fig6bScenario) {
	t.Helper()
	sc, err := alloc.Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(sc.RackTorus, sc.Allocs, sc.SpliceDim)
	if err != nil {
		t.Fatal(err)
	}
	return f, sc
}

func TestNewFabricValidation(t *testing.T) {
	tor := torus.New(torus.TPUv4RackShape)
	a, _ := torus.NewAllocation(tor, nil)
	if _, err := NewFabric(tor, nil, 2); err == nil {
		t.Error("no racks accepted")
	}
	if _, err := NewFabric(tor, []*torus.Allocation{a}, 5); err == nil {
		t.Error("bad splice dim accepted")
	}
}

func TestGlobalSplitRoundTrip(t *testing.T) {
	f, _ := fig6bFabric(t)
	for g := 0; g < f.Size(); g++ {
		rack, chip := f.Split(g)
		if f.Global(rack, chip) != g {
			t.Fatalf("round trip failed at %d", g)
		}
	}
	if f.Racks() != 2 || f.RackSize() != 64 || f.Size() != 128 {
		t.Fatalf("geometry: %d racks x %d", f.Racks(), f.RackSize())
	}
}

func TestNeighborsUnspliced(t *testing.T) {
	f, _ := fig6aFabric(t)
	// Interior chip: 6 neighbors, all in rack 0.
	g := f.Global(0, f.t.Index(torus.Coord{1, 1, 1}))
	nbs := f.Neighbors(g)
	if len(nbs) != 6 {
		t.Fatalf("degree = %d, want 6", len(nbs))
	}
	// Top-face chip wraps to its own rack's bottom face.
	top := f.Global(0, f.t.Index(torus.Coord{0, 0, 3}))
	bottom := f.Global(0, f.t.Index(torus.Coord{0, 0, 0}))
	found := false
	for _, nb := range f.Neighbors(top) {
		if nb == bottom {
			found = true
		}
	}
	if !found {
		t.Fatal("self-wrap neighbor missing")
	}
}

func TestSpliceColumn(t *testing.T) {
	f, _ := fig6bFabric(t)
	busy := torus.LinkUse{}
	col := f.t.Index(torus.Coord{2, 0, 0}) // a rack-2 free column
	if err := f.SpliceColumn(0, 1, col, busy); err != nil {
		t.Fatal(err)
	}
	// Rack 0's top face on that column now reaches rack 1's bottom.
	top := f.Global(0, f.t.Index(torus.Coord{2, 0, 3}))
	want := f.Global(1, f.t.Index(torus.Coord{2, 0, 0}))
	found := false
	for _, nb := range f.Neighbors(top) {
		if nb == want {
			found = true
		}
	}
	if !found {
		t.Fatal("spliced neighbor missing")
	}
	// Double splice rejected.
	if err := f.SpliceColumn(0, 1, col, busy); err == nil {
		t.Fatal("double splice accepted")
	}
	// Self-splice rejected.
	if err := f.SpliceColumn(0, 0, col+1, busy); err == nil {
		t.Fatal("self splice accepted")
	}
}

func TestSpliceRejectedWhenWrapBusy(t *testing.T) {
	f, _ := fig6bFabric(t)
	// Rack 2's Slice-1 runs Z rings on columns x in {0,1}: their wrap
	// links are busy, so splicing them must fail (the paper's purple
	// line conflict).
	busy := f.BusyLinks()
	col := f.t.Index(torus.Coord{0, 0, 0})
	if err := f.SpliceColumn(0, 1, col, busy); err == nil {
		t.Fatal("splice through a live Z ring accepted")
	}
}

func TestBusyLinksFig6a(t *testing.T) {
	f, sc := fig6aFabric(t)
	busy := f.BusyLinks()
	// Slice-4 (4x4x2) runs X and Y bucket rings at z in {0,1}: the
	// link (0,0,0)->(1,0,0) is busy.
	l := torus.Link{
		From: f.Global(0, sc.Torus.Index(torus.Coord{0, 0, 0})),
		To:   f.Global(0, sc.Torus.Index(torus.Coord{1, 0, 0})),
	}
	if busy[l] == 0 {
		t.Fatal("Slice-4 X ring link not busy")
	}
	// No Z links are busy anywhere (no slice runs Z rings).
	for g := 0; g < f.Size(); g++ {
		_, chip := f.Split(g)
		co := sc.Torus.Coord(chip)
		co[2] = (co[2] + 1) % 4
		zlink := torus.Link{From: g, To: f.Global(0, sc.Torus.Index(co))}
		if busy[zlink] > 0 {
			t.Fatalf("Z link %v busy", zlink)
		}
	}
}

func TestRepairEndpointsFig6a(t *testing.T) {
	f, sc := fig6aFabric(t)
	eps, err := f.RepairEndpoints(0, sc.FailedChip)
	if err != nil {
		t.Fatal(err)
	}
	// Interior chip of a 2-D bucket slice: one X ring and one Y ring
	// broken.
	if len(eps) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(eps))
	}
	tor := sc.Torus
	wantPairs := map[[2]int]bool{
		{tor.Index(torus.Coord{0, 1, 2}), tor.Index(torus.Coord{2, 1, 2})}: true, // X ring
		{tor.Index(torus.Coord{1, 0, 2}), tor.Index(torus.Coord{1, 2, 2})}: true, // Y ring
	}
	for _, ep := range eps {
		if !wantPairs[[2]int{ep.Pred, ep.Succ}] {
			t.Fatalf("unexpected endpoint pair %+v", ep)
		}
	}
}

func TestRepairEndpointsErrors(t *testing.T) {
	f, sc := fig6aFabric(t)
	if _, err := f.RepairEndpoints(0, sc.FreeChips[0]); err == nil {
		t.Fatal("free chip repair accepted")
	}
}

// TestFig6aElectricalRepairImpossible is experiment E7: in the
// Figure 6a rack, no free chip can replace the failed one without
// congestion on the electrical torus ("replacing the failed chip
// (red) with one of the free chips (blue) is impossible without
// congestion").
func TestFig6aElectricalRepairImpossible(t *testing.T) {
	f, sc := fig6aFabric(t)
	plan, err := f.ElectricalRepair(0, sc.FailedChip, 8)
	if !errors.Is(err, ErrNoCongestionFreeRepair) {
		t.Fatalf("err = %v, want ErrNoCongestionFreeRepair", err)
	}
	// The diagnostic plan exists but is congested.
	if plan == nil {
		t.Fatal("no diagnostic plan found")
	}
	if plan.Congestion == 0 {
		t.Fatal("diagnostic plan claims zero congestion")
	}
}

// TestFig6bElectricalRepairImpossible is experiment E8: replacing the
// failed chip with a free chip in rack 2 congests (the paper's purple
// line) — no congestion-free plan exists even with cross-rack OCS
// splicing available.
func TestFig6bElectricalRepairImpossible(t *testing.T) {
	f, sc := fig6bFabric(t)
	// Pre-splice the free columns of rack 2 toward rack 1, giving the
	// electrical repair its best chance.
	busy := f.BusyLinks()
	for _, freeChip := range sc.FreeChips {
		col := sc.RackTorus.Coord(freeChip)
		col[2] = 0
		_ = f.SpliceColumn(0, 1, sc.RackTorus.Index(col), busy)
	}
	plan, err := f.ElectricalRepair(0, sc.FailedChip, 16)
	if !errors.Is(err, ErrNoCongestionFreeRepair) {
		t.Fatalf("err = %v, want ErrNoCongestionFreeRepair", err)
	}
	if plan != nil && plan.Congestion == 0 {
		t.Fatal("plan claims zero congestion")
	}
}

// TestRepairableScenario sanity-checks the search itself: with a free
// chip adjacent to the broken rings and no interfering tenants, the
// electrical repair succeeds congestion-free.
func TestRepairableScenario(t *testing.T) {
	tor := torus.New(torus.TPUv4RackShape)
	victim := &torus.Slice{Name: "v", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{4, 4, 1}}
	a, err := torus.NewAllocation(tor, []*torus.Slice{victim})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(tor, []*torus.Allocation{a}, 2)
	if err != nil {
		t.Fatal(err)
	}
	failed := tor.Index(torus.Coord{1, 1, 0})
	plan, err := f.ElectricalRepair(0, failed, 0)
	if err != nil {
		t.Fatalf("repair in an otherwise empty rack failed: %v", err)
	}
	if plan.Congestion != 0 {
		t.Fatalf("congestion = %d, want 0", plan.Congestion)
	}
	if len(plan.Paths) != 4 {
		t.Fatalf("paths = %d, want 4 (two rings x two legs)", len(plan.Paths))
	}
	// Paths never touch the failed chip.
	for _, p := range plan.Paths {
		for _, l := range p.Links {
			if f.Failed(l.From) || f.Failed(l.To) {
				t.Fatal("repair path crosses the failed chip")
			}
		}
	}
}

// TestFig7OpticalRepair is experiment E9: the same Figure 6a failure
// repairs optically — circuits from the broken-ring neighbors to a
// free chip, on disjoint waveguides, ready one reconfiguration delay
// after establishment.
func TestFig7OpticalRepair(t *testing.T) {
	f, sc := fig6aFabric(t)
	plan, err := f.OpticalRepair(0, sc.FailedChip, 4, 0, 42)
	if err != nil {
		t.Fatalf("optical repair failed: %v", err)
	}
	// Two broken rings with distinct neighbors: 4 circuits.
	if len(plan.Circuits) != 4 {
		t.Fatalf("circuits = %d, want 4", len(plan.Circuits))
	}
	if !plan.Disjoint() {
		t.Fatal("repair circuits share resources")
	}
	if plan.ReadyAt != phy.ReconfigLatency {
		t.Fatalf("ready at %v, want %v", plan.ReadyAt, phy.ReconfigLatency)
	}
	// The replacement is one of the scenario's free chips.
	found := false
	for _, fc := range sc.FreeChips {
		if plan.Replacement == f.Global(0, fc) {
			found = true
		}
	}
	if !found {
		t.Fatalf("replacement %d is not a free chip", plan.Replacement)
	}
	// Repair bandwidth at width 4 ~ 896 Gbps, comparable to a TPU
	// dimension port.
	if bw := plan.RepairBandwidth(); bw != 4*phy.WavelengthCapacity {
		t.Fatalf("repair bandwidth = %v", bw)
	}
}

// TestFig6bOpticalRepair: the cross-rack failure also repairs
// optically — fibers between wafers carry the circuits.
func TestFig6bOpticalRepair(t *testing.T) {
	f, sc := fig6bFabric(t)
	plan, err := f.OpticalRepair(0, sc.FailedChip, 2, 0, 43)
	if err != nil {
		t.Fatalf("cross-rack optical repair failed: %v", err)
	}
	if !plan.Disjoint() {
		t.Fatal("circuits share resources")
	}
	// The victim is in rack 1 (wafers 0-1) and the replacement in
	// rack 2 (wafers 2-3): the circuits must use fibers.
	usedFiber := false
	for _, c := range plan.Circuits {
		if len(c.Fibers) > 0 {
			usedFiber = true
		}
	}
	if !usedFiber {
		t.Fatal("cross-rack repair used no fibers")
	}
}

// TestBlastRadius is experiment E10: rack-granularity electrical
// fault handling impacts 64 chips; optical repair impacts only the
// 4-chip server — a 16x shrinkage.
func TestBlastRadius(t *testing.T) {
	c := torus.NewTPUv4Cluster()
	g := c.GlobalID(17, 33)
	elec := ElectricalBlastRadius(c, g)
	opt := OpticalBlastRadius(c, g)
	if len(elec) != 64 {
		t.Fatalf("electrical blast = %d chips, want 64", len(elec))
	}
	if len(opt) != 4 {
		t.Fatalf("optical blast = %d chips, want 4", len(opt))
	}
	// The failed chip is inside both radii.
	inElec, inOpt := false, false
	for _, ch := range elec {
		if ch == g {
			inElec = true
		}
	}
	for _, ch := range opt {
		if ch == g {
			inOpt = true
		}
	}
	if !inElec || !inOpt {
		t.Fatal("failed chip outside its own blast radius")
	}
}

func TestSweepBlastRadius(t *testing.T) {
	c := torus.NewTPUv4Cluster()
	stats := SweepBlastRadius(c)
	if stats.Failures != 4096 {
		t.Fatalf("failures = %d", stats.Failures)
	}
	if stats.ElectricalMean != 64 || stats.OpticalMean != 4 {
		t.Fatalf("means = %v / %v", stats.ElectricalMean, stats.OpticalMean)
	}
	if stats.Ratio != 16 {
		t.Fatalf("ratio = %v, want 16", stats.Ratio)
	}
}

func TestOwnerAndFreeChips(t *testing.T) {
	f, sc := fig6aFabric(t)
	if f.Owner(f.Global(0, sc.FailedChip)) != sc.Victim {
		t.Fatal("owner mismatch")
	}
	free := f.FreeChips()
	if len(free) != 8 {
		t.Fatalf("free = %d", len(free))
	}
	// Failing a free chip removes it from the pool.
	f.Fail(free[0])
	if len(f.FreeChips()) != 7 {
		t.Fatal("failed free chip still in pool")
	}
}

// TestMultiOpticalRepair: two simultaneous failures in different
// slices repair with one shared allocator, all circuits across both
// plans mutually disjoint.
func TestMultiOpticalRepair(t *testing.T) {
	f, sc := fig6aFabric(t)
	// Second failure inside Slice-4 (interior chip at (1,1,1)).
	second := sc.Torus.Index(torus.Coord{1, 1, 1})
	plans, err := f.MultiOpticalRepair([][2]int{{0, sc.FailedChip}, {0, second}}, 2, 0, 7)
	if err != nil {
		t.Fatalf("multi repair: %v", err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d", len(plans))
	}
	if plans[0].Replacement == plans[1].Replacement {
		t.Fatal("both failures took the same replacement chip")
	}
	var all []*route.Circuit
	for _, p := range plans {
		if !p.Disjoint() {
			t.Fatal("intra-plan overlap")
		}
		all = append(all, p.Circuits...)
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i].SharesResources(all[j]) {
				t.Fatal("cross-plan circuits share resources")
			}
		}
	}
}

// TestMultiOpticalRepairExhaustsSpares: more failures than free chips
// must fail cleanly.
func TestMultiOpticalRepairExhaustsSpares(t *testing.T) {
	tor := torus.New(torus.TPUv4RackShape)
	// One victim slice occupying everything but one spare.
	slices := []*torus.Slice{
		{Name: "big", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{4, 4, 2}},
		{Name: "mid", Origin: torus.Coord{0, 0, 2}, Shape: torus.Shape{4, 4, 1}},
		{Name: "top", Origin: torus.Coord{0, 0, 3}, Shape: torus.Shape{4, 2, 1}},
		{Name: "pad", Origin: torus.Coord{0, 2, 3}, Shape: torus.Shape{4, 1, 1}},
		{Name: "pad2", Origin: torus.Coord{0, 3, 3}, Shape: torus.Shape{2, 1, 1}},
	}
	a, err := torus.NewAllocation(tor, slices)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.FreeChips()); got != 2 {
		t.Fatalf("free chips = %d, want 2", got)
	}
	f, err := NewFabric(tor, []*torus.Allocation{a}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three failures, two spares.
	failures := [][2]int{
		{0, tor.Index(torus.Coord{1, 1, 0})},
		{0, tor.Index(torus.Coord{2, 2, 0})},
		{0, tor.Index(torus.Coord{1, 1, 2})},
	}
	if _, err := f.MultiOpticalRepair(failures, 1, 0, 9); err == nil {
		t.Fatal("repair with too few spares accepted")
	}
}

// TestRepairedRingCollectiveCorrect ties the repair to the collective
// machinery end to end: after replacing the failed chip in the victim's
// broken rings with the optical plan's replacement, the repaired ring
// still computes a mathematically correct AllReduce over the surviving
// membership.
func TestRepairedRingCollectiveCorrect(t *testing.T) {
	f, sc := fig6aFabric(t)
	plan, err := f.OpticalRepair(0, sc.FailedChip, 4, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	repl := plan.Replacement // global == local in a 1-rack fabric

	// Rebuild the victim's broken X ring with the replacement spliced
	// in where the failed chip sat.
	eps, err := f.RepairEndpoints(0, sc.FailedChip)
	if err != nil {
		t.Fatal(err)
	}
	tor := sc.Torus
	xRing := []int{}
	for _, chip := range tor.Line(sc.FailedChip, 0) {
		if chip == sc.FailedChip {
			xRing = append(xRing, repl)
		} else {
			xRing = append(xRing, chip)
		}
	}
	// The repair endpoints bracket the replacement in ring order.
	foundBracket := false
	for _, ep := range eps {
		for i, c := range xRing {
			n := len(xRing)
			if c == repl && xRing[(i-1+n)%n] == ep.Pred && xRing[(i+1)%n] == ep.Succ {
				foundBracket = true
			}
		}
	}
	if !foundBracket {
		t.Fatal("replacement not bracketed by any endpoint pair")
	}

	// Run a real AllReduce over the repaired ring and check the sums.
	const n = 64
	sched, err := collective.RingAllReduce("repaired", xRing, n, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := collective.NewState(xRing, n, func(chip, i int) float64 {
		return float64(chip*100 + i)
	})
	ref := collective.ReduceAcross(st, xRing, n)
	if err := st.Execute(sched); err != nil {
		t.Fatal(err)
	}
	if err := collective.CheckAllReduce(st, xRing, ref); err != nil {
		t.Fatal(err)
	}
}
