package failure

import (
	"fmt"

	"lightpath/internal/torus"
)

// This file derives the steady-state link traffic each tenant's
// collectives impose on the electrical torus — the "busy" links that
// repair paths must avoid. A dimension line carrying a ring is
// counted busy in both orientations: the bucket AllReduce's
// ReduceScatter and AllGather phases, run back-to-back and often
// counter-rotated, keep both directions of a ring's cables occupied.

// sliceTraffic describes what one slice runs.
type sliceTraffic struct {
	// rings are the ordered chip cycles the slice's collective uses
	// (local chip indices).
	rings [][]int
}

// trafficFor determines a slice's collective pattern on the
// electrical torus:
//
//   - If every active dimension (extent >= 2) is congestion-free for
//     the slice, it runs the multidimensional bucket algorithm: one
//     set of rings per dimension (the paper's Slice-3, Table 2).
//   - Otherwise it runs the single snake (Hamiltonian) ring covering
//     all chips — the only congestion-free pattern left to a slice
//     like Slice-1 that can only use one dimension (Table 1).
//   - Slices that can do neither (no usable dimension and no snake)
//     impose no ring traffic.
func trafficFor(t *torus.Torus, a *torus.Allocation, si int) sliceTraffic {
	s := a.Slices()[si]
	usable := a.UsableDims(si, false)
	active := 0
	for _, e := range s.Shape {
		if e >= 2 {
			active++
		}
	}
	if active > 0 && len(usable) == active {
		var tr sliceTraffic
		for _, d := range usable {
			rings, err := s.Rings(t, d)
			if err != nil {
				// UsableDims guaranteed realizability; a failure here
				// is a programming error.
				panic(fmt.Sprintf("failure: %q dim %d rings: %v", s.Name, d, err))
			}
			tr.rings = append(tr.rings, rings...)
		}
		return tr
	}
	if ring, err := s.SnakeRing(t); err == nil {
		return sliceTraffic{rings: [][]int{ring}}
	}
	var tr sliceTraffic
	for _, d := range usable {
		rings, err := s.Rings(t, d)
		if err == nil {
			tr.rings = append(tr.rings, rings...)
		}
	}
	return tr
}

// BusyLinks returns the global directed links carried by every
// slice's collective across all racks, both orientations per ring
// edge. Links incident to a failed chip are dead, not busy, and are
// excluded; the victim's broken rings contribute their intact
// segments (the repaired ring keeps using them).
func (f *Fabric) BusyLinks() torus.LinkUse {
	busy := torus.LinkUse{}
	for rack, a := range f.allocs {
		for si := range a.Slices() {
			tr := trafficFor(f.t, a, si)
			for _, ring := range tr.rings {
				for i := range ring {
					from := f.Global(rack, ring[i])
					to := f.Global(rack, ring[(i+1)%len(ring)])
					if f.failed[from] || f.failed[to] {
						continue
					}
					busy.Add([]torus.Link{{From: from, To: to}, {From: to, To: from}})
				}
			}
		}
	}
	return busy
}

// RepairEndpoint is one stitch the repair must make: traffic must
// flow From -> To through the replacement chip's circuits/paths.
type RepairEndpoint struct {
	// Pred and Succ are the failed chip's ring predecessor and
	// successor (global chips): the repair must carry Pred ->
	// replacement -> Succ.
	Pred, Succ int
}

// RepairEndpoints returns, for each of the victim slice's rings
// broken by the failed chip, the predecessor/successor pair the
// replacement must be spliced between. The victim is identified by
// its rack and local failed chip.
func (f *Fabric) RepairEndpoints(rack, failedLocal int) ([]RepairEndpoint, error) {
	a := f.allocs[rack]
	si := a.Owner(failedLocal)
	if si == torus.FreeChip {
		return nil, fmt.Errorf("failure: failed chip %d is not allocated", failedLocal)
	}
	tr := trafficFor(f.t, a, si)
	var eps []RepairEndpoint
	for _, ring := range tr.rings {
		for i, chip := range ring {
			if chip != failedLocal {
				continue
			}
			n := len(ring)
			eps = append(eps, RepairEndpoint{
				Pred: f.Global(rack, ring[(i-1+n)%n]),
				Succ: f.Global(rack, ring[(i+1)%n]),
			})
			break
		}
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("failure: chip %d carries no rings; nothing to repair", failedLocal)
	}
	return eps, nil
}
