package failure

import (
	"fmt"

	"lightpath/internal/phy"
	"lightpath/internal/rng"
	"lightpath/internal/route"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// OpticalPlan is the Figure 7 outcome: dedicated, mutually disjoint
// optical circuits splice the replacement chip into every broken
// ring.
type OpticalPlan struct {
	Replacement int
	Circuits    []*route.Circuit
	// ReadyAt is when the repaired rings can resume: all circuit MZIs
	// settled (establishment time + 3.7 us).
	ReadyAt unit.Seconds
}

// OpticalRepair establishes the repair circuits on a LIGHTPATH rack
// hosting the fabric's chips (one tile per chip, 32-tile wafers
// chained with fibers). For each broken ring it connects the
// predecessor and successor to the replacement chip with separate
// circuits, each of the given wavelength width; the allocator
// guarantees they share no waveguide or fiber ("We place these
// optical circuits on separate waveguides and fibers to avoid
// congestion", §4.2).
//
// Every free chip is tried; the paper's point — which the tests
// assert — is that the first candidate already succeeds, because the
// photonic fabric's path diversity is enormous compared to the 6
// ports of a torus chip.
func (f *Fabric) OpticalRepair(rack, failedLocal, width int, now unit.Seconds, seed uint64) (*OpticalPlan, error) {
	f.Fail(f.Global(rack, failedLocal))
	eps, err := f.RepairEndpoints(rack, failedLocal)
	if err != nil {
		return nil, err
	}
	free := f.FreeChips()
	if len(free) == 0 {
		return nil, fmt.Errorf("failure: no free chips to repair with")
	}

	cfg := wafer.DefaultConfig()
	wafers := (f.Size() + cfg.Tiles() - 1) / cfg.Tiles()
	hw, err := wafer.NewRack(cfg, wafers)
	if err != nil {
		return nil, err
	}
	alloc := route.NewAllocator(hw, rng.New(seed))
	alloc.CheckBudget = true

	var lastErr error
	for _, repl := range free {
		plan, err := f.tryOptical(alloc, eps, repl, width, now)
		if err == nil {
			return plan, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("failure: optical repair failed for every free chip: %w", lastErr)
}

// tryOptical establishes the circuits for one replacement candidate,
// releasing everything if any circuit fails.
func (f *Fabric) tryOptical(alloc *route.Allocator, eps []RepairEndpoint, repl, width int, now unit.Seconds) (*OpticalPlan, error) {
	plan := &OpticalPlan{Replacement: repl}
	rollback := func() {
		for _, c := range plan.Circuits {
			alloc.Release(c)
		}
	}
	seen := map[[2]int]bool{}
	for _, ep := range eps {
		for _, peer := range [2]int{ep.Pred, ep.Succ} {
			key := [2]int{minInt(peer, repl), maxIntPair(peer, repl)}
			if seen[key] {
				continue // bidirectional circuit already covers this pair
			}
			seen[key] = true
			c, err := alloc.Establish(route.Request{A: peer, B: repl, Width: width}, now)
			if err != nil {
				rollback()
				return nil, err
			}
			plan.Circuits = append(plan.Circuits, c)
		}
	}
	for _, c := range plan.Circuits {
		if c.ReadyAt > plan.ReadyAt {
			plan.ReadyAt = c.ReadyAt
		}
	}
	return plan, nil
}

// MultiOpticalRepair repairs several simultaneous chip failures on
// one shared photonic rack: each failure gets its own replacement
// chip and repair circuits, and every circuit across every plan is
// mutually disjoint (they share one allocator). failures are
// (rack, local chip) pairs.
func (f *Fabric) MultiOpticalRepair(failures [][2]int, width int, now unit.Seconds, seed uint64) ([]*OpticalPlan, error) {
	cfg := wafer.DefaultConfig()
	wafers := (f.Size() + cfg.Tiles() - 1) / cfg.Tiles()
	hw, err := wafer.NewRack(cfg, wafers)
	if err != nil {
		return nil, err
	}
	alloc := route.NewAllocator(hw, rng.New(seed))
	alloc.CheckBudget = true

	for _, fl := range failures {
		f.Fail(f.Global(fl[0], fl[1]))
	}
	taken := map[int]bool{}
	var plans []*OpticalPlan
	for i, fl := range failures {
		eps, err := f.RepairEndpoints(fl[0], fl[1])
		if err != nil {
			return nil, fmt.Errorf("failure: failure %d: %w", i, err)
		}
		var plan *OpticalPlan
		var lastErr error
		for _, repl := range f.FreeChips() {
			if taken[repl] {
				continue
			}
			plan, lastErr = f.tryOptical(alloc, eps, repl, width, now)
			if lastErr == nil {
				break
			}
			plan = nil
		}
		if plan == nil {
			return nil, fmt.Errorf("failure: failure %d unrepairable: %w", i, lastErr)
		}
		taken[plan.Replacement] = true
		plans = append(plans, plan)
	}
	return plans, nil
}

// Disjoint verifies the plan's circuits share no waveguide or fiber —
// the §4.2 non-overlap property.
func (p *OpticalPlan) Disjoint() bool {
	for i := range p.Circuits {
		for j := i + 1; j < len(p.Circuits); j++ {
			if p.Circuits[i].SharesResources(p.Circuits[j]) {
				return false
			}
		}
	}
	return true
}

// RepairBandwidth returns each circuit's bandwidth at the default
// per-wavelength capacity.
func (p *OpticalPlan) RepairBandwidth() unit.BitRate {
	if len(p.Circuits) == 0 {
		return 0
	}
	return p.Circuits[0].Bandwidth(phy.WavelengthCapacity)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxIntPair(a, b int) int {
	if a > b {
		return a
	}
	return b
}
