package collective

import (
	"testing"
)

// Native fuzz targets: run as seeded unit tests under `go test`, and
// explorable with `go test -fuzz=FuzzX ./internal/collective`.

// FuzzRingAllReduce checks the ring AllReduce computes exact sums for
// arbitrary geometry.
func FuzzRingAllReduce(f *testing.F) {
	f.Add(uint8(4), uint16(64), uint64(1))
	f.Add(uint8(2), uint16(1), uint64(2))
	f.Add(uint8(8), uint16(1000), uint64(3))
	f.Fuzz(func(t *testing.T, pRaw uint8, nRaw uint16, seed uint64) {
		p := int(pRaw%15) + 2
		n := int(nRaw%2048) + 1
		ring := make([]int, p)
		for i := range ring {
			ring[i] = i * 3 // non-contiguous IDs
		}
		sched, err := RingAllReduce("fuzz", ring, n, 4, nil)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if err := sched.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
		st := NewState(ring, n, fillRandom(seed))
		ref := ReduceAcross(st, ring, n)
		if err := st.Execute(sched); err != nil {
			t.Fatalf("execute: %v", err)
		}
		if err := CheckAllReduce(st, ring, ref); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzRangeSub checks subdivision always partitions.
func FuzzRangeSub(f *testing.F) {
	f.Add(0, 100, uint8(7))
	f.Add(5, 5, uint8(1))
	f.Fuzz(func(t *testing.T, lo, length int, pRaw uint8) {
		if lo < -1<<20 || lo > 1<<20 || length < 0 || length > 1<<20 {
			t.Skip()
		}
		p := int(pRaw%32) + 1
		r := Range{Lo: lo, Hi: lo + length}
		prev := r.Lo
		total := 0
		for j := 0; j < p; j++ {
			s := r.Sub(j, p)
			if s.Lo != prev {
				t.Fatalf("gap at chunk %d: %v", j, s)
			}
			prev = s.Hi
			total += s.Len()
		}
		if prev != r.Hi || total != r.Len() {
			t.Fatalf("partition broken: end %d, total %d", prev, total)
		}
	})
}

// FuzzAllToAll checks the exchange for arbitrary chip counts and
// block sizes.
func FuzzAllToAll(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint64(1))
	f.Add(uint8(2), uint8(1), uint64(9))
	f.Fuzz(func(t *testing.T, pRaw, blocksRaw uint8, seed uint64) {
		p := int(pRaw%10) + 2
		n := (int(blocksRaw%16) + 1) * p
		chips := make([]int, p)
		for i := range chips {
			chips[i] = 100 + i
		}
		sched, err := AllToAll("fuzz", chips, n, 4, false)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if err := sched.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
		st := NewState(chips, 2*n, nil)
		full := Range{Lo: 0, Hi: n}
		fill := func(i, j, el int) float64 { return float64(i*131 + j*17 + el) }
		for i, chip := range chips {
			for j := 0; j < p; j++ {
				block := full.Sub(j, p)
				for el := block.Lo; el < block.Hi; el++ {
					st[chip][el] = fill(i, j, el-block.Lo)
				}
			}
		}
		if err := st.Execute(sched); err != nil {
			t.Fatalf("execute: %v", err)
		}
		if err := CheckAllToAll(st, chips, n, fill); err != nil {
			t.Fatal(err)
		}
	})
}
