package collective

import (
	"fmt"

	"lightpath/internal/unit"
)

// DimResolver maps a (from, to) chip pair to the torus dimension their
// link traverses, or -1. A nil resolver leaves Dim unset (-1).
type DimResolver func(from, to int) int

func resolveDim(r DimResolver, from, to int) int {
	if r == nil {
		return -1
	}
	return r(from, to)
}

// RingOwnership describes which subrange of a parent range each ring
// member owns after a ReduceScatter (or must own before an AllGather):
// member at ring position i owns sub-chunk (i+Offset) mod p.
type RingOwnership struct {
	Parent Range
	P      int
	Offset int
}

// Owned returns the range owned by ring position i.
func (o RingOwnership) Owned(i int) Range {
	return o.Parent.Sub(((i+o.Offset)%o.P+o.P)%o.P, o.P)
}

// ringReduceScatterSteps appends the p-1 ReduceScatter steps of one
// ring over the given range to steps (extending steps if needed) and
// returns the extended slice. Step s: member i sends chunk
// (i - s) mod p to member i+1, which reduces it. Transfers from
// multiple rings in the same collective phase land in the same step
// indices, modeling their concurrency.
func ringReduceScatterSteps(steps []Step, ring []int, r Range, dim DimResolver, base int) []Step {
	p := len(ring)
	for s := 0; s < p-1; s++ {
		for len(steps) <= base+s {
			steps = append(steps, Step{})
		}
		for i := 0; i < p; i++ {
			chunk := ((i-s)%p + p) % p
			sub := r.Sub(chunk, p)
			if sub.Empty() {
				continue
			}
			from, to := ring[i], ring[(i+1)%p]
			steps[base+s].Transfers = append(steps[base+s].Transfers, Transfer{
				From:   from,
				To:     to,
				Range:  sub,
				DstLo:  InPlace,
				Reduce: true,
				Dim:    resolveDim(dim, from, to),
			})
		}
	}
	return steps
}

// ringAllGatherSteps appends the p-1 AllGather steps of one ring whose
// members start owning chunk (i+offset) mod p of the range. Step s:
// member i sends chunk (i - s + offset) mod p to member i+1 (copy).
func ringAllGatherSteps(steps []Step, ring []int, r Range, offset int, dim DimResolver, base int) []Step {
	p := len(ring)
	for s := 0; s < p-1; s++ {
		for len(steps) <= base+s {
			steps = append(steps, Step{})
		}
		for i := 0; i < p; i++ {
			chunk := ((i-s+offset)%p + p) % p
			sub := r.Sub(chunk, p)
			if sub.Empty() {
				continue
			}
			from, to := ring[i], ring[(i+1)%p]
			steps[base+s].Transfers = append(steps[base+s].Transfers, Transfer{
				From:  from,
				To:    to,
				Range: sub,
				DstLo: InPlace,
				Dim:   resolveDim(dim, from, to),
			})
		}
	}
	return steps
}

// validateRing rejects degenerate or duplicate-member rings.
func validateRing(ring []int) error {
	if len(ring) < 2 {
		return fmt.Errorf("collective: ring needs at least 2 members, got %d", len(ring))
	}
	seen := map[int]bool{}
	for _, c := range ring {
		if seen[c] {
			return fmt.Errorf("collective: ring repeats chip %d", c)
		}
		seen[c] = true
	}
	return nil
}

// RingReduceScatter builds the classic (p-1)-step ring ReduceScatter
// over the given chip cycle: n elements of elemBytes each, split into
// p chunks; after the schedule, ring member i holds the fully reduced
// chunk (i+1) mod p. This is the single-ring execution of the paper's
// Slice-1 (Table 1: 7 alpha steps over 8 chips).
func RingReduceScatter(name string, ring []int, n int, elemBytes unit.Bytes, dim DimResolver) (*Schedule, RingOwnership, error) {
	if err := validateRing(ring); err != nil {
		return nil, RingOwnership{}, err
	}
	full := Range{Lo: 0, Hi: n}
	sched := &Schedule{Name: name, N: n, ElemBytes: elemBytes}
	sched.Steps = ringReduceScatterSteps(nil, ring, full, dim, 0)
	return sched, RingOwnership{Parent: full, P: len(ring), Offset: 1}, nil
}

// RingAllGather builds the (p-1)-step ring AllGather over the chip
// cycle, where member i initially owns chunk (i+ownership.Offset) mod p
// of ownership.Parent. After the schedule every member holds the whole
// parent range.
func RingAllGather(name string, ring []int, own RingOwnership, n int, elemBytes unit.Bytes, dim DimResolver) (*Schedule, error) {
	if err := validateRing(ring); err != nil {
		return nil, err
	}
	if own.P != len(ring) {
		return nil, fmt.Errorf("collective: ownership for %d members, ring has %d", own.P, len(ring))
	}
	sched := &Schedule{Name: name, N: n, ElemBytes: elemBytes}
	sched.Steps = ringAllGatherSteps(nil, ring, own.Parent, own.Offset, dim, 0)
	return sched, nil
}

// RingAllReduce builds the standard 2(p-1)-step ring AllReduce:
// ReduceScatter followed by AllGather of the reduced chunks.
func RingAllReduce(name string, ring []int, n int, elemBytes unit.Bytes, dim DimResolver) (*Schedule, error) {
	rs, own, err := RingReduceScatter(name+"/rs", ring, n, elemBytes, dim)
	if err != nil {
		return nil, err
	}
	ag, err := RingAllGather(name+"/ag", ring, own, n, elemBytes, dim)
	if err != nil {
		return nil, err
	}
	return rs.Concat(name, ag)
}
