package collective

import (
	"fmt"
	"math"
	"sort"
)

// This file is the schedule interpreter: it executes a Schedule
// against real per-chip buffers so tests can prove that the generated
// communication pattern computes the mathematically correct
// ReduceScatter/AllGather/AllReduce result for arbitrary inputs — a
// DESIGN.md invariant.

// State holds each chip's buffer.
type State map[int][]float64

// NewState allocates an n-element buffer per chip, filled by fill
// (which receives the chip ID and element index).
func NewState(chips []int, n int, fill func(chip, i int) float64) State {
	st := make(State, len(chips))
	for _, c := range chips {
		buf := make([]float64, n)
		if fill != nil {
			for i := range buf {
				buf[i] = fill(c, i)
			}
		}
		st[c] = buf
	}
	return st
}

// Clone deep-copies the state.
func (st State) Clone() State {
	out := make(State, len(st))
	for c, buf := range st {
		b := make([]float64, len(buf))
		copy(b, buf)
		out[c] = b
	}
	return out
}

// Execute applies the schedule's steps in order. Within a step, all
// payloads are read from the pre-step state before any write is
// applied, so concurrent transfers behave as they would on real
// hardware where sends and receives of a step overlap in time.
func (st State) Execute(s *Schedule) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for si, step := range s.Steps {
		type delivery struct {
			to      int
			lo      int
			reduce  bool
			payload []float64
		}
		deliveries := make([]delivery, 0, len(step.Transfers))
		for ti, tr := range step.Transfers {
			src, ok := st[tr.From]
			if !ok {
				return fmt.Errorf("collective: step %d transfer %d reads unknown chip %d", si, ti, tr.From)
			}
			if _, ok := st[tr.To]; !ok {
				return fmt.Errorf("collective: step %d transfer %d writes unknown chip %d", si, ti, tr.To)
			}
			if tr.Range.Hi > len(src) {
				return fmt.Errorf("collective: step %d transfer %d range %v exceeds buffer %d", si, ti, tr.Range, len(src))
			}
			dst := tr.DstRange()
			if dst.Hi > len(st[tr.To]) {
				return fmt.Errorf("collective: step %d transfer %d destination %v exceeds buffer %d", si, ti, dst, len(st[tr.To]))
			}
			payload := make([]float64, tr.Range.Len())
			copy(payload, src[tr.Range.Lo:tr.Range.Hi])
			deliveries = append(deliveries, delivery{to: tr.To, lo: dst.Lo, reduce: tr.Reduce, payload: payload})
		}
		for _, d := range deliveries {
			dst := st[d.to]
			if d.reduce {
				for i, v := range d.payload {
					dst[d.lo+i] += v
				}
			} else {
				copy(dst[d.lo:d.lo+len(d.payload)], d.payload)
			}
		}
	}
	return nil
}

// ReduceAcross returns the element-wise sum of the chips' initial
// buffers — the reference result of an AllReduce with summation.
func ReduceAcross(st State, chips []int, n int) []float64 {
	ref := make([]float64, n)
	for _, c := range chips {
		for i, v := range st[c] {
			ref[i] += v
		}
	}
	return ref
}

// CheckAllReduce verifies every chip's buffer equals the reference
// within floating-point tolerance.
func CheckAllReduce(st State, chips []int, ref []float64) error {
	for _, c := range chips {
		buf := st[c]
		if len(buf) != len(ref) {
			return fmt.Errorf("collective: chip %d buffer length %d, want %d", c, len(buf), len(ref))
		}
		for i, v := range buf {
			if !approxEqual(v, ref[i]) {
				return fmt.Errorf("collective: chip %d element %d = %v, want %v", c, i, v, ref[i])
			}
		}
	}
	return nil
}

// CheckReduceScatter verifies each chip's owned range holds the
// reference reduction, that owned ranges are disjoint, and that they
// jointly cover [0, n).
func CheckReduceScatter(st State, owned map[int]Range, ref []float64) error {
	covered := make([]int, len(ref))
	chips := make([]int, 0, len(owned))
	for c := range owned {
		chips = append(chips, c)
	}
	sort.Ints(chips)
	for _, c := range chips {
		r := owned[c]
		buf := st[c]
		for i := r.Lo; i < r.Hi; i++ {
			if !approxEqual(buf[i], ref[i]) {
				return fmt.Errorf("collective: chip %d owned element %d = %v, want %v", c, i, buf[i], ref[i])
			}
			covered[i]++
		}
	}
	for i, n := range covered {
		if n != 1 {
			return fmt.Errorf("collective: element %d covered %d times, want exactly once", i, n)
		}
	}
	return nil
}

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}
