package collective

import (
	"fmt"
	"math"
	"sort"
)

// This file is the schedule interpreter: it executes a Schedule
// against real per-chip buffers so tests can prove that the generated
// communication pattern computes the mathematically correct
// ReduceScatter/AllGather/AllReduce result for arbitrary inputs — a
// DESIGN.md invariant.

// State holds each chip's buffer.
type State map[int][]float64

// NewState allocates an n-element buffer per chip, filled by fill
// (which receives the chip ID and element index).
func NewState(chips []int, n int, fill func(chip, i int) float64) State {
	st := make(State, len(chips))
	for _, c := range chips {
		buf := make([]float64, n)
		if fill != nil {
			for i := range buf {
				buf[i] = fill(c, i)
			}
		}
		st[c] = buf
	}
	return st
}

// Clone deep-copies the state.
func (st State) Clone() State {
	out := make(State, len(st))
	for c, buf := range st {
		b := make([]float64, len(buf))
		copy(b, buf)
		out[c] = b
	}
	return out
}

// Execute applies the schedule's steps in order. Within a step, all
// payloads are read from the pre-step state before any write is
// applied, so concurrent transfers behave as they would on real
// hardware where sends and receives of a step overlap in time.
//
// Execute is a convenience shim over a fresh Interp; callers running
// many schedules (the chaos trials) hold an Interp so the per-step
// payload staging is reused instead of reallocated.
func (st State) Execute(s *Schedule) error {
	var ip Interp
	return ip.Execute(st, s)
}

// delivery is one staged transfer: the payload has been read from the
// pre-step state and waits to be applied.
type delivery struct {
	to      int
	lo      int
	reduce  bool
	payload []float64
}

// Interp is a reusable schedule interpreter. The per-step delivery
// list and the arena backing the staged payloads persist across calls,
// so steady-state execution does not allocate. A zero Interp is ready
// to use; it must not be shared between goroutines.
type Interp struct {
	deliveries []delivery
	payloads   []float64
}

// Execute validates the schedule and applies its steps in order, like
// State.Execute, reusing the interpreter's scratch.
func (ip *Interp) Execute(st State, s *Schedule) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for si := range s.Steps {
		if err := ip.ExecuteStep(st, s, si); err != nil {
			return err
		}
	}
	return nil
}

// ExecuteStep applies step si only — the resume path of the failure
// experiments, which replay a schedule one step at a time around a
// fault. It checks chips and ranges against the live state but does
// not re-run Validate; callers validate the schedule once up front
// (and again after mutating it).
func (ip *Interp) ExecuteStep(st State, s *Schedule, si int) error {
	step := &s.Steps[si]
	ip.deliveries = ip.deliveries[:0]
	for ti, tr := range step.Transfers {
		src, ok := st[tr.From]
		if !ok {
			return fmt.Errorf("collective: step %d transfer %d reads unknown chip %d", si, ti, tr.From)
		}
		if _, ok := st[tr.To]; !ok {
			return fmt.Errorf("collective: step %d transfer %d writes unknown chip %d", si, ti, tr.To)
		}
		if tr.Range.Hi > len(src) {
			return fmt.Errorf("collective: step %d transfer %d range %v exceeds buffer %d", si, ti, tr.Range, len(src))
		}
		dst := tr.DstRange()
		if dst.Hi > len(st[tr.To]) {
			return fmt.Errorf("collective: step %d transfer %d destination %v exceeds buffer %d", si, ti, dst, len(st[tr.To]))
		}
		// The payload aliases the source buffer for now; it is staged
		// into the arena below only if some delivery would overwrite it.
		ip.deliveries = append(ip.deliveries, delivery{to: tr.To, lo: dst.Lo, reduce: tr.Reduce, payload: src[tr.Range.Lo:tr.Range.Hi]})
	}
	// Read-before-write: a payload must be staged only when another
	// transfer of the same step writes into its source range. Ring and
	// bucket schedules never do (a chip always forwards a chunk other
	// than the one it receives), so the common case applies payloads
	// straight from the source buffers with no copy.
	if ip.stepConflicts(st, step) {
		total := 0
		for _, tr := range step.Transfers {
			total += tr.Range.Len()
		}
		// The arena is sized up front so the payload subslices are
		// never invalidated by growth.
		if cap(ip.payloads) < total {
			ip.payloads = make([]float64, 0, total)
		}
		ip.payloads = ip.payloads[:0]
		for di := range ip.deliveries {
			d := &ip.deliveries[di]
			lo := len(ip.payloads)
			ip.payloads = append(ip.payloads, d.payload...)
			d.payload = ip.payloads[lo:]
		}
	}
	for _, d := range ip.deliveries {
		// Subslicing to the exact destination window lets the compiler
		// drop the per-element bounds checks in the reduce loop.
		dst := st[d.to][d.lo : d.lo+len(d.payload)]
		if d.reduce {
			for i, v := range d.payload {
				dst[i] += v
			}
		} else {
			copy(dst, d.payload)
		}
	}
	return nil
}

// stepConflicts reports whether any transfer of the step writes into a
// range another transfer of the same step reads.
func (ip *Interp) stepConflicts(st State, step *Step) bool {
	for i := range step.Transfers {
		tr := &step.Transfers[i]
		for j := range ip.deliveries {
			d := &ip.deliveries[j]
			if tr.From != d.to {
				continue
			}
			if tr.Range.Lo < d.lo+len(d.payload) && d.lo < tr.Range.Hi {
				return true
			}
		}
	}
	return false
}

// ReduceAcross returns the element-wise sum of the chips' initial
// buffers — the reference result of an AllReduce with summation.
func ReduceAcross(st State, chips []int, n int) []float64 {
	return ReduceAcrossInto(nil, st, chips, n)
}

// ReduceAcrossInto is ReduceAcross into a caller-owned slice, grown as
// needed and returned — the fault campaigns call it per trial and keep
// the reference buffer out of their steady-state allocation count.
func ReduceAcrossInto(dst []float64, st State, chips []int, n int) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	clear(dst)
	for _, c := range chips {
		for i, v := range st[c] {
			dst[i] += v
		}
	}
	return dst
}

// CheckAllReduce verifies every chip's buffer equals the reference
// within floating-point tolerance.
func CheckAllReduce(st State, chips []int, ref []float64) error {
	for _, c := range chips {
		buf := st[c]
		if len(buf) != len(ref) {
			return fmt.Errorf("collective: chip %d buffer length %d, want %d", c, len(buf), len(ref))
		}
		for i, v := range buf {
			// Exact equality inline: most elements match bit for bit,
			// and the comparison avoids a call per element on what is
			// the campaigns' single hottest check.
			if v != ref[i] && !approxEqual(v, ref[i]) {
				return fmt.Errorf("collective: chip %d element %d = %v, want %v", c, i, v, ref[i])
			}
		}
	}
	return nil
}

// CheckReduceScatter verifies each chip's owned range holds the
// reference reduction, that owned ranges are disjoint, and that they
// jointly cover [0, n).
func CheckReduceScatter(st State, owned map[int]Range, ref []float64) error {
	covered := make([]int, len(ref))
	chips := make([]int, 0, len(owned))
	for c := range owned {
		chips = append(chips, c)
	}
	sort.Ints(chips)
	for _, c := range chips {
		r := owned[c]
		buf := st[c]
		for i := r.Lo; i < r.Hi; i++ {
			if !approxEqual(buf[i], ref[i]) {
				return fmt.Errorf("collective: chip %d owned element %d = %v, want %v", c, i, buf[i], ref[i])
			}
			covered[i]++
		}
	}
	for i, n := range covered {
		if n != 1 {
			return fmt.Errorf("collective: element %d covered %d times, want exactly once", i, n)
		}
	}
	return nil
}

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	// Max by comparison rather than math.Max: unlike Abs, Max is not an
	// intrinsic, and this runs per element of every checked buffer. NaN
	// still fails: diff is NaN whenever a or b is, and NaN <= x is
	// false for every x.
	diff := math.Abs(a - b)
	scale := math.Abs(a)
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= 1e-9*scale
}
