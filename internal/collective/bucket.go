package collective

import (
	"fmt"

	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// This file implements the multidimensional bucket algorithm for torus
// networks ([39] in the paper), the collective that TPUv4 slices
// execute (§4.1): a sequence of ring phases, one per torus dimension.
// ReduceScatter runs the dimensions in order, each phase subdividing
// every chip's owned buffer range by its ring position; AllGather
// unwinds the phases in reverse. AllReduce is the two concatenated.
//
// The paper's observation: because the phases are sequential, "only
// one ring is active at a given time", leaving the other dimensions'
// statically-provisioned bandwidth idle on an electrical torus —
// exactly what LIGHTPATH's bandwidth redirection recovers.

// ActiveDims returns the slice dimensions with extent >= 2, in
// ascending order: the dimensions over which the bucket algorithm
// actually runs rings.
func ActiveDims(s *torus.Slice) []int {
	var dims []int
	for d, e := range s.Shape {
		if e >= 2 {
			dims = append(dims, d)
		}
	}
	return dims
}

// phase records one dimension phase of a bucket ReduceScatter so the
// AllGather can unwind it.
type phase struct {
	dim     int
	rings   [][]int
	parents []Range // parent range of each ring at this phase
}

// BucketOptions tunes schedule generation.
type BucketOptions struct {
	// MarkReconfig marks the first step of every dimension phase as
	// requiring optical reconfiguration — the schedule as executed on
	// a photonic interconnect that redirects bandwidth per phase. The
	// cost model charges r per marked step (Tables 1-2: "+r").
	MarkReconfig bool
}

// BucketReduceScatter builds the multidimensional bucket ReduceScatter
// of an n-element buffer over the slice, running ring phases over
// dimOrder (extent-1 dimensions are skipped). It returns the schedule
// and each chip's finally-owned range.
func BucketReduceScatter(name string, t *torus.Torus, s *torus.Slice, dimOrder []int, n int, elemBytes unit.Bytes, opt BucketOptions) (*Schedule, map[int]Range, error) {
	sched, owned, _, err := bucketRS(name, t, s, dimOrder, Range{Lo: 0, Hi: n}, n, elemBytes, opt)
	return sched, owned, err
}

func bucketRS(name string, t *torus.Torus, s *torus.Slice, dimOrder []int, initial Range, n int, elemBytes unit.Bytes, opt BucketOptions) (*Schedule, map[int]Range, []phase, error) {
	if err := validateDimOrder(t, dimOrder); err != nil {
		return nil, nil, nil, err
	}
	dimOf := func(from, to int) int { return t.LinkDim(torus.Link{From: from, To: to}) }

	owned := make(map[int]Range, s.Size())
	for _, chip := range s.Chips(t) {
		owned[chip] = initial
	}

	sched := &Schedule{Name: name, N: n, ElemBytes: elemBytes}
	var phases []phase
	for _, d := range dimOrder {
		if s.Shape[d] < 2 {
			continue
		}
		rings, err := s.Rings(t, d)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("collective: %q dim %d: %w", name, d, err)
		}
		base := len(sched.Steps)
		ph := phase{dim: d}
		for _, ring := range rings {
			parent, err := commonOwned(owned, ring)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("collective: %q dim %d: %w", name, d, err)
			}
			sched.Steps = ringReduceScatterSteps(sched.Steps, ring, parent, dimOf, base)
			for i, chip := range ring {
				owned[chip] = parent.Sub((i+1)%len(ring), len(ring))
			}
			ph.rings = append(ph.rings, ring)
			ph.parents = append(ph.parents, parent)
		}
		if opt.MarkReconfig && len(sched.Steps) > base {
			sched.Steps[base].Reconfig = true
		}
		phases = append(phases, ph)
	}
	return sched, owned, phases, nil
}

// BucketAllReduce builds the full bucket AllReduce: D ReduceScatter
// phases followed by D AllGather phases in reverse dimension order
// (§4.1: "D REDUCESCATTER operations followed by D ALLGATHER
// operations").
func BucketAllReduce(name string, t *torus.Torus, s *torus.Slice, dimOrder []int, n int, elemBytes unit.Bytes, opt BucketOptions) (*Schedule, error) {
	sched, _, phases, err := bucketRS(name, t, s, dimOrder, Range{Lo: 0, Hi: n}, n, elemBytes, opt)
	if err != nil {
		return nil, err
	}
	appendAllGatherPhases(sched, t, phases, opt)
	return sched, nil
}

// appendAllGatherPhases unwinds recorded ReduceScatter phases in
// reverse order, appending the AllGather steps to the schedule.
func appendAllGatherPhases(sched *Schedule, t *torus.Torus, phases []phase, opt BucketOptions) {
	dimOf := func(from, to int) int { return t.LinkDim(torus.Link{From: from, To: to}) }
	for pi := len(phases) - 1; pi >= 0; pi-- {
		ph := phases[pi]
		base := len(sched.Steps)
		for ri, ring := range ph.rings {
			// After the RS phase, ring member i owned sub-chunk
			// (i+1) mod p of the parent: offset 1.
			sched.Steps = ringAllGatherSteps(sched.Steps, ring, ph.parents[ri], 1, dimOf, base)
		}
		if opt.MarkReconfig && len(sched.Steps) > base {
			sched.Steps[base].Reconfig = true
		}
	}
}

// commonOwned asserts all ring members own the same range (an
// invariant of the bucket algorithm) and returns it.
func commonOwned(owned map[int]Range, ring []int) (Range, error) {
	r := owned[ring[0]]
	for _, chip := range ring[1:] {
		if owned[chip] != r {
			return Range{}, fmt.Errorf("ring members own divergent ranges: %v vs %v", r, owned[chip])
		}
	}
	return r, nil
}

func validateDimOrder(t *torus.Torus, dimOrder []int) error {
	if len(dimOrder) == 0 {
		return fmt.Errorf("collective: empty dimension order")
	}
	seen := map[int]bool{}
	for _, d := range dimOrder {
		if d < 0 || d >= t.Dims() {
			return fmt.Errorf("collective: dimension %d out of range", d)
		}
		if seen[d] {
			return fmt.Errorf("collective: dimension %d repeated in order", d)
		}
		seen[d] = true
	}
	return nil
}

// SimultaneousBucketAllReduce builds the buffer-splitting variant the
// paper discusses in §4.1 ([41]): the buffer is divided into one part
// per active dimension, and each part runs a bucket AllReduce with a
// rotated dimension order (XYZ, YZX, ZXY, ...) so that every
// dimension carries traffic throughout the collective. The paper's
// point — which the cost model confirms — is that on an electrical
// torus this achieves the same beta cost as LIGHTPATH's bandwidth
// redirection does with a single bucket execution, but it cannot do
// better, and it multiplies the alpha cost.
func SimultaneousBucketAllReduce(name string, t *torus.Torus, s *torus.Slice, n int, elemBytes unit.Bytes, opt BucketOptions) (*Schedule, error) {
	dims := ActiveDims(s)
	if len(dims) == 0 {
		return nil, fmt.Errorf("collective: slice %q has no active dimensions", s.Name)
	}
	D := len(dims)
	full := Range{Lo: 0, Hi: n}
	merged := &Schedule{Name: name, N: n, ElemBytes: elemBytes}
	for k := 0; k < D; k++ {
		part := full.Sub(k, D)
		order := make([]int, D)
		for i := range order {
			order[i] = dims[(i+k)%D]
		}
		partName := fmt.Sprintf("%s/part%d", name, k)
		rs, _, phases, err := bucketRS(partName, t, s, order, part, n, elemBytes, opt)
		if err != nil {
			return nil, err
		}
		appendAllGatherPhases(rs, t, phases, opt)
		mergeSteps(merged, rs)
	}
	return merged, nil
}

// mergeSteps overlays src's steps onto dst index-by-index, modeling
// the parts running concurrently.
func mergeSteps(dst, src *Schedule) {
	for i, st := range src.Steps {
		for len(dst.Steps) <= i {
			dst.Steps = append(dst.Steps, Step{})
		}
		dst.Steps[i].Transfers = append(dst.Steps[i].Transfers, st.Transfers...)
		dst.Steps[i].Reconfig = dst.Steps[i].Reconfig || st.Reconfig
	}
}

// SnakeRingAllReduce builds the single-Hamiltonian-ring AllReduce that
// a sub-rack slice executes when the photonic interconnect redirects
// all of the chip's bandwidth onto one ring (§4.1, Figure 5c: "we
// program the MZI switches on Slice-1 to redirect all of their
// bandwidth along the ring in the X dimension and execute one
// instance of the algorithm"). On an electrical torus the same
// schedule exists but each hop is confined to one dimension's static
// bandwidth.
func SnakeRingAllReduce(name string, t *torus.Torus, s *torus.Slice, n int, elemBytes unit.Bytes, opt BucketOptions) (*Schedule, error) {
	ring, err := s.SnakeRing(t)
	if err != nil {
		return nil, err
	}
	dimOf := func(from, to int) int { return t.LinkDim(torus.Link{From: from, To: to}) }
	sched, err := RingAllReduce(name, ring, n, elemBytes, dimOf)
	if err != nil {
		return nil, err
	}
	if opt.MarkReconfig && len(sched.Steps) > 0 {
		// One circuit establishment before the ring starts; the ring
		// then runs to completion with no further switching.
		sched.Steps[0].Reconfig = true
	}
	return sched, nil
}

// SnakeRingReduceScatter is the ReduceScatter-only form (Table 1
// prices exactly this operation for Slice-1).
func SnakeRingReduceScatter(name string, t *torus.Torus, s *torus.Slice, n int, elemBytes unit.Bytes, opt BucketOptions) (*Schedule, map[int]Range, error) {
	ring, err := s.SnakeRing(t)
	if err != nil {
		return nil, nil, err
	}
	dimOf := func(from, to int) int { return t.LinkDim(torus.Link{From: from, To: to}) }
	sched, own, err := RingReduceScatter(name, ring, n, elemBytes, dimOf)
	if err != nil {
		return nil, nil, err
	}
	if opt.MarkReconfig && len(sched.Steps) > 0 {
		sched.Steps[0].Reconfig = true
	}
	owned := make(map[int]Range, len(ring))
	for i, chip := range ring {
		owned[chip] = own.Owned(i)
	}
	return sched, owned, nil
}
