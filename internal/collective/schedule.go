// Package collective implements the collective-communication
// algorithms the paper builds on (§2, §4.1): ring ReduceScatter,
// AllGather and AllReduce, the multidimensional bucket algorithm used
// by TPU tori ([39] in the paper), and the simultaneous multi-sequence
// variant ([41]) that splits the buffer across dimension orders.
//
// Algorithms produce explicit Schedules — sequences of steps, each a
// set of concurrent transfers — that downstream packages consume: the
// cost model prices them analytically (Tables 1-2), the network
// simulator executes them against link capacities, and this package's
// own interpreter executes them against real buffers to prove the
// mathematics correct (a DESIGN.md invariant).
package collective

import (
	"errors"
	"fmt"
	"sort"

	"lightpath/internal/unit"
)

// Range is a half-open element interval [Lo, Hi) within the collective
// buffer.
type Range struct {
	Lo, Hi int
}

// Len returns the number of elements in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Empty reports whether the range holds no elements.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Sub returns the j-th of p near-even subranges of r. All callers
// slicing the same range with the same p obtain identical boundaries,
// which is what keeps distributed chunk ownership consistent.
func (r Range) Sub(j, p int) Range {
	if p <= 0 || j < 0 || j >= p {
		panic(fmt.Sprintf("collective: Sub(%d, %d) out of range", j, p))
	}
	n := r.Len()
	return Range{
		Lo: r.Lo + j*n/p,
		Hi: r.Lo + (j+1)*n/p,
	}
}

// Overlaps reports whether two ranges share any element.
func (r Range) Overlaps(o Range) bool {
	return r.Lo < o.Hi && o.Lo < r.Hi
}

// String formats the range as "[lo,hi)".
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Transfer is one point-to-point movement of a buffer range between
// chips within a step.
type Transfer struct {
	From, To int
	Range    Range
	// DstLo is the destination element offset the payload lands at.
	// Ring and bucket schedules write in place (destination range ==
	// Range); AllToAll does not: chip i's block for chip j lands at
	// chip j's block i. A zero value means offset 0, which for the
	// in-place generators coincides with their Range.Lo of 0 blocks
	// only; they set InPlace explicitly.
	DstLo int
	// Reduce indicates the payload is element-wise added into the
	// destination (ReduceScatter phase) rather than copied (AllGather
	// phase).
	Reduce bool
	// Dim is the torus dimension the transfer traverses, or -1 when
	// unknown/not applicable. The electrical cost model needs it to
	// charge the transfer against the right per-dimension link.
	Dim int
}

// InPlace is the DstLo sentinel meaning "the destination range equals
// the source Range".
const InPlace = -1

// DstRange returns the destination element range the payload writes.
func (tr Transfer) DstRange() Range {
	if tr.DstLo < 0 {
		return tr.Range
	}
	return Range{Lo: tr.DstLo, Hi: tr.DstLo + tr.Range.Len()}
}

// Bytes returns the transfer's payload size for the given element
// width.
func (tr Transfer) Bytes(elemBytes unit.Bytes) unit.Bytes {
	return unit.Bytes(tr.Range.Len()) * elemBytes
}

// Step is a set of transfers that proceed concurrently.
type Step struct {
	Transfers []Transfer
	// Reconfig marks that the optical interconnect must be
	// reprogrammed before this step begins (bandwidth redirected to a
	// new dimension); the cost model charges the reconfiguration
	// delay r once per marked step.
	Reconfig bool
}

// Schedule is an ordered sequence of steps implementing one collective
// operation over a fixed set of chips.
type Schedule struct {
	Name string
	// N is the collective buffer length in elements.
	N int
	// ElemBytes is the width of one element.
	ElemBytes unit.Bytes
	Steps     []Step
}

// Clone deep-copies the schedule. The failure experiments splice a
// replacement chip into a schedule in place, so a campaign that plans
// once and runs many fault trials hands each trial its own clone.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{Name: s.Name, N: s.N, ElemBytes: s.ElemBytes}
	out.Steps = make([]Step, len(s.Steps))
	for i, st := range s.Steps {
		out.Steps[i] = Step{
			Transfers: append([]Transfer(nil), st.Transfers...),
			Reconfig:  st.Reconfig,
		}
	}
	return out
}

// Chips returns the sorted set of chips that appear in the schedule.
func (s *Schedule) Chips() []int {
	set := map[int]bool{}
	for _, st := range s.Steps {
		for _, tr := range st.Transfers {
			set[tr.From] = true
			set[tr.To] = true
		}
	}
	chips := make([]int, 0, len(set))
	for c := range set {
		chips = append(chips, c)
	}
	sort.Ints(chips)
	return chips
}

// NumSteps returns the number of steps.
func (s *Schedule) NumSteps() int { return len(s.Steps) }

// Reconfigs returns how many steps require optical reconfiguration.
func (s *Schedule) Reconfigs() int {
	n := 0
	for _, st := range s.Steps {
		if st.Reconfig {
			n++
		}
	}
	return n
}

// TotalBytes returns the sum of all transfer payloads.
func (s *Schedule) TotalBytes() unit.Bytes {
	var total unit.Bytes
	for _, st := range s.Steps {
		for _, tr := range st.Transfers {
			total += tr.Bytes(s.ElemBytes)
		}
	}
	return total
}

// MaxBytesPerChipStep returns, for each step, the largest payload any
// single chip sends in that step — the quantity the alpha-beta model
// divides by per-chip bandwidth.
func (s *Schedule) MaxBytesPerChipStep() []unit.Bytes {
	out := make([]unit.Bytes, len(s.Steps))
	for i, st := range s.Steps {
		perChip := map[int]unit.Bytes{}
		for _, tr := range st.Transfers {
			perChip[tr.From] += tr.Bytes(s.ElemBytes)
		}
		for _, b := range perChip {
			if b > out[i] {
				out[i] = b
			}
		}
	}
	return out
}

// Validate checks structural sanity: non-negative ranges inside
// [0, N), no self-transfers, and no two transfers in one step writing
// overlapping destination ranges on the same chip (which would make
// the step's outcome order-dependent).
func (s *Schedule) Validate() error {
	if s.N < 0 {
		return fmt.Errorf("collective: schedule %q has negative N", s.Name)
	}
	type write struct {
		chip int
		r    Range
	}
	// One overlap scratch for the whole schedule: validation runs once
	// per execution (and once more after a repair splice), so growing a
	// fresh slice per step dominated the validator's allocations.
	var writes []write
	for si, st := range s.Steps {
		writes = writes[:0]
		for ti, tr := range st.Transfers {
			if tr.From == tr.To {
				return fmt.Errorf("collective: %q step %d transfer %d is a self-transfer", s.Name, si, ti)
			}
			if tr.Range.Lo < 0 || tr.Range.Hi > s.N || tr.Range.Empty() {
				return fmt.Errorf("collective: %q step %d transfer %d has bad range %v", s.Name, si, ti, tr.Range)
			}
			dst := tr.DstRange()
			if dst.Lo < 0 || dst.Hi > s.N {
				return fmt.Errorf("collective: %q step %d transfer %d has bad destination range %v", s.Name, si, ti, dst)
			}
			for _, w := range writes {
				if w.chip == tr.To && w.r.Overlaps(dst) {
					return fmt.Errorf("collective: %q step %d has overlapping writes to chip %d (%v and %v)",
						s.Name, si, tr.To, w.r, dst)
				}
			}
			writes = append(writes, write{chip: tr.To, r: dst})
		}
	}
	return nil
}

// Concat appends the steps of others after s's steps, returning a new
// schedule (used to build AllReduce = ReduceScatter + AllGather). N
// and ElemBytes must match.
func (s *Schedule) Concat(name string, others ...*Schedule) (*Schedule, error) {
	out := &Schedule{Name: name, N: s.N, ElemBytes: s.ElemBytes}
	out.Steps = append(out.Steps, s.Steps...)
	for _, o := range others {
		if o.N != s.N || !unit.ApproxEqual(o.ElemBytes, s.ElemBytes) {
			return nil, errors.New("collective: concat of schedules with different buffer geometry")
		}
		out.Steps = append(out.Steps, o.Steps...)
	}
	return out, nil
}
