package collective

import (
	"testing"
	"testing/quick"

	"lightpath/internal/torus"
)

// slice3 returns the paper's Slice-3 (4x4x1, Table 2) on a TPU rack.
func slice3() (*torus.Torus, *torus.Slice) {
	t := torus.New(torus.Shape{4, 4, 4})
	return t, &torus.Slice{Name: "Slice-3", Origin: torus.Coord{0, 0, 2}, Shape: torus.Shape{4, 4, 1}}
}

// slice1 returns the paper's Slice-1 (4x2x1, Table 1).
func slice1() (*torus.Torus, *torus.Slice) {
	t := torus.New(torus.Shape{4, 4, 4})
	return t, &torus.Slice{Name: "Slice-1", Origin: torus.Coord{0, 0, 3}, Shape: torus.Shape{4, 2, 1}}
}

func TestActiveDims(t *testing.T) {
	_, s := slice3()
	dims := ActiveDims(s)
	if len(dims) != 2 || dims[0] != 0 || dims[1] != 1 {
		t.Fatalf("active dims = %v, want [0 1]", dims)
	}
}

func TestBucketReduceScatterCorrect(t *testing.T) {
	tor, s := slice3()
	n := 96
	sched, owned, err := BucketReduceScatter("rs", tor, s, []int{0, 1}, n, 4, BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Two phases of 3 steps each on a 4x4.
	if sched.NumSteps() != 6 {
		t.Fatalf("steps = %d, want 6", sched.NumSteps())
	}
	chips := s.Chips(tor)
	st := NewState(chips, n, fillRandom(5))
	ref := ReduceAcross(st, chips, n)
	if err := st.Execute(sched); err != nil {
		t.Fatal(err)
	}
	if err := CheckReduceScatter(st, owned, ref); err != nil {
		t.Fatal(err)
	}
	// Each chip ends owning ~N/16 of the buffer.
	for chip, r := range owned {
		if r.Len() != n/16 {
			t.Fatalf("chip %d owns %d elements, want %d", chip, r.Len(), n/16)
		}
	}
}

func TestBucketAllReduceCorrect(t *testing.T) {
	tor, s := slice3()
	n := 64
	sched, err := BucketAllReduce("ar", tor, s, []int{0, 1}, n, 4, BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// D RS phases + D AG phases: (3+3) + (3+3) = 12 steps.
	if sched.NumSteps() != 12 {
		t.Fatalf("steps = %d, want 12", sched.NumSteps())
	}
	chips := s.Chips(tor)
	st := NewState(chips, n, fillRandom(13))
	ref := ReduceAcross(st, chips, n)
	if err := st.Execute(sched); err != nil {
		t.Fatal(err)
	}
	if err := CheckAllReduce(st, chips, ref); err != nil {
		t.Fatal(err)
	}
}

func TestBucketAllReduce3D(t *testing.T) {
	// A full rack cube: 4x4x4, all three dimensions active.
	tor := torus.New(torus.Shape{4, 4, 4})
	s := &torus.Slice{Name: "cube", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{4, 4, 4}}
	n := 128
	sched, err := BucketAllReduce("cube-ar", tor, s, []int{0, 1, 2}, n, 4, BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chips := s.Chips(tor)
	st := NewState(chips, n, fillRandom(17))
	ref := ReduceAcross(st, chips, n)
	if err := st.Execute(sched); err != nil {
		t.Fatal(err)
	}
	if err := CheckAllReduce(st, chips, ref); err != nil {
		t.Fatal(err)
	}
}

func TestBucketSkipsExtent1Dims(t *testing.T) {
	tor, s := slice3()
	// Dim order includes the extent-1 Z dimension: skipped silently.
	sched, err := BucketAllReduce("z", tor, s, []int{0, 1, 2}, 32, 4, BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumSteps() != 12 {
		t.Fatalf("steps = %d, want 12 (Z contributes none)", sched.NumSteps())
	}
}

func TestBucketDimOrderValidation(t *testing.T) {
	tor, s := slice3()
	if _, err := BucketAllReduce("e", tor, s, nil, 32, 4, BucketOptions{}); err == nil {
		t.Error("empty dim order accepted")
	}
	if _, err := BucketAllReduce("e", tor, s, []int{0, 0}, 32, 4, BucketOptions{}); err == nil {
		t.Error("repeated dim accepted")
	}
	if _, err := BucketAllReduce("e", tor, s, []int{5}, 32, 4, BucketOptions{}); err == nil {
		t.Error("out-of-range dim accepted")
	}
}

func TestBucketUnrealizableRing(t *testing.T) {
	tor := torus.New(torus.Shape{4, 4, 4})
	s := &torus.Slice{Name: "bad", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{3, 2, 1}}
	if _, err := BucketAllReduce("bad", tor, s, []int{0, 1}, 32, 4, BucketOptions{}); err == nil {
		t.Error("extent-3-of-4 ring accepted")
	}
}

func TestBucketReconfigMarks(t *testing.T) {
	tor, s := slice3()
	sched, err := BucketAllReduce("opt", tor, s, []int{0, 1}, 64, 4, BucketOptions{MarkReconfig: true})
	if err != nil {
		t.Fatal(err)
	}
	// One reconfiguration per dimension phase: 2 RS + 2 AG = 4.
	if got := sched.Reconfigs(); got != 4 {
		t.Fatalf("reconfigs = %d, want 4", got)
	}
	// Electrical schedule has none.
	sched2, _ := BucketAllReduce("elec", tor, s, []int{0, 1}, 64, 4, BucketOptions{})
	if sched2.Reconfigs() != 0 {
		t.Fatal("electrical schedule marked reconfigs")
	}
}

func TestBucketTransferDims(t *testing.T) {
	tor, s := slice3()
	sched, _, err := BucketReduceScatter("dims", tor, s, []int{0, 1}, 64, 4, BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// First 3 steps are the X phase, next 3 the Y phase.
	for si, step := range sched.Steps {
		wantDim := 0
		if si >= 3 {
			wantDim = 1
		}
		for _, tr := range step.Transfers {
			if tr.Dim != wantDim {
				t.Fatalf("step %d transfer dim = %d, want %d", si, tr.Dim, wantDim)
			}
		}
	}
}

func TestSimultaneousBucketAllReduceCorrect(t *testing.T) {
	tor, s := slice3()
	n := 96
	sched, err := SimultaneousBucketAllReduce("sim", tor, s, n, 4, BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chips := s.Chips(tor)
	st := NewState(chips, n, fillRandom(23))
	ref := ReduceAcross(st, chips, n)
	if err := st.Execute(sched); err != nil {
		t.Fatal(err)
	}
	if err := CheckAllReduce(st, chips, ref); err != nil {
		t.Fatal(err)
	}
}

func TestSimultaneousBucketUsesAllDimsConcurrently(t *testing.T) {
	// The §4.1 point of the variant: in the first step, transfers run
	// along every active dimension at once.
	tor, s := slice3()
	sched, err := SimultaneousBucketAllReduce("sim", tor, s, 96, 4, BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dims := map[int]bool{}
	for _, tr := range sched.Steps[0].Transfers {
		dims[tr.Dim] = true
	}
	if !dims[0] || !dims[1] {
		t.Fatalf("first step dims = %v, want both 0 and 1", dims)
	}
}

func TestSimultaneousBucketNoActiveDims(t *testing.T) {
	tor := torus.New(torus.Shape{4, 4, 4})
	s := &torus.Slice{Name: "one", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{1, 1, 1}}
	if _, err := SimultaneousBucketAllReduce("x", tor, s, 8, 4, BucketOptions{}); err == nil {
		t.Error("no-dimension slice accepted")
	}
}

func TestSnakeRingAllReduceCorrect(t *testing.T) {
	tor, s := slice1()
	n := 80
	sched, err := SnakeRingAllReduce("snake", tor, s, n, 4, BucketOptions{MarkReconfig: true})
	if err != nil {
		t.Fatal(err)
	}
	// 8 chips: 7 RS + 7 AG steps, one circuit establishment.
	if sched.NumSteps() != 14 {
		t.Fatalf("steps = %d, want 14", sched.NumSteps())
	}
	if sched.Reconfigs() != 1 {
		t.Fatalf("reconfigs = %d, want 1", sched.Reconfigs())
	}
	chips := s.Chips(tor)
	st := NewState(chips, n, fillRandom(31))
	ref := ReduceAcross(st, chips, n)
	if err := st.Execute(sched); err != nil {
		t.Fatal(err)
	}
	if err := CheckAllReduce(st, chips, ref); err != nil {
		t.Fatal(err)
	}
}

func TestSnakeRingReduceScatterCorrect(t *testing.T) {
	tor, s := slice1()
	n := 64
	sched, owned, err := SnakeRingReduceScatter("snake-rs", tor, s, n, 4, BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumSteps() != 7 {
		t.Fatalf("steps = %d, want 7 (Table 1's 7 alpha)", sched.NumSteps())
	}
	chips := s.Chips(tor)
	st := NewState(chips, n, fillRandom(37))
	ref := ReduceAcross(st, chips, n)
	if err := st.Execute(sched); err != nil {
		t.Fatal(err)
	}
	if err := CheckReduceScatter(st, owned, ref); err != nil {
		t.Fatal(err)
	}
}

func TestSnakeRingUnavailable(t *testing.T) {
	tor := torus.New(torus.Shape{4, 4, 4})
	s := &torus.Slice{Name: "3d", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{4, 4, 2}}
	if _, err := SnakeRingAllReduce("x", tor, s, 8, 4, BucketOptions{}); err == nil {
		t.Error("3-D snake ring accepted")
	}
}

// Property test: bucket AllReduce is correct for random sub-slices and
// buffer sizes, including non-divisible ones.
func TestBucketAllReduceProperty(t *testing.T) {
	tor := torus.New(torus.Shape{4, 4, 4})
	f := func(ox, oy, oz, sx, sy, nRaw uint8, seed uint64) bool {
		// Extents from {1, 2, 4} to stay realizable.
		pick := func(v uint8) int { return []int{1, 2, 4}[v%3] }
		shape := torus.Shape{pick(sx), pick(sy), 1}
		if shape.Size() < 2 {
			return true // nothing to reduce
		}
		origin := torus.Coord{int(ox % 4), int(oy % 4), int(oz % 4)}
		s := &torus.Slice{Name: "prop", Origin: origin, Shape: shape}
		n := int(nRaw%100) + 1
		sched, err := BucketAllReduce("prop", tor, s, []int{0, 1, 2}, n, 4, BucketOptions{})
		if err != nil {
			return false
		}
		chips := s.Chips(tor)
		st := NewState(chips, n, fillRandom(seed))
		ref := ReduceAcross(st, chips, n)
		if err := st.Execute(sched); err != nil {
			return false
		}
		return CheckAllReduce(st, chips, ref) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
