package collective

import (
	"fmt"

	"lightpath/internal/unit"
)

// This file implements AllToAll — the traffic pattern the paper's §5
// singles out as the hard case for circuit scheduling: "While simple
// collective operations, such as those using ring ALLREDUCE where
// each accelerator communicates with only two others, are relatively
// straightforward, handling all-to-all traffic is much more complex."
//
// The schedule is the classic shifted-round exchange: in step
// s (1..p-1), chip i sends its block for chip (i+s) mod p. Every step
// pairs each chip with a *different* partner, so on a photonic fabric
// every step needs its circuits reprogrammed (each step is marked
// Reconfig when requested), while on an electrical torus most
// partners are not adjacent and the transfers must be routed over
// multiple hops, colliding on links.
//
// Like MPI_Alltoall, the exchange uses distinct send and receive
// buffers — an in-place shifted exchange would overwrite blocks
// before they are sent. Each chip's buffer is laid out as
// [send | recv]: elements [0, n) hold the p uniform outgoing blocks,
// elements [n, 2n) receive block i from chip i. A chip's own block
// stays in its send half (no self-transfer).

// AllToAll builds the (p-1)-step shifted exchange over the chips. n
// is the per-direction buffer length in elements and must be a
// multiple of len(chips); the schedule's N is 2n (send + recv
// halves).
func AllToAll(name string, chips []int, n int, elemBytes unit.Bytes, markReconfig bool) (*Schedule, error) {
	p := len(chips)
	if p < 2 {
		return nil, fmt.Errorf("collective: all-to-all needs at least 2 chips, got %d", p)
	}
	seen := map[int]bool{}
	for _, c := range chips {
		if seen[c] {
			return nil, fmt.Errorf("collective: all-to-all repeats chip %d", c)
		}
		seen[c] = true
	}
	if n%p != 0 {
		// Uniform blocks, like MPI_Alltoall: block j of chip i must
		// land exactly in block i of chip j.
		return nil, fmt.Errorf("collective: all-to-all buffer %d not divisible by %d chips", n, p)
	}
	send := Range{Lo: 0, Hi: n}
	sched := &Schedule{Name: name, N: 2 * n, ElemBytes: elemBytes}
	for s := 1; s < p; s++ {
		step := Step{Reconfig: markReconfig}
		for i := 0; i < p; i++ {
			j := (i + s) % p
			src := send.Sub(j, p)
			if src.Empty() {
				continue
			}
			step.Transfers = append(step.Transfers, Transfer{
				From:  chips[i],
				To:    chips[j],
				Range: src,
				// Lands in the receiver's recv half, at the block
				// indexed by the sender.
				DstLo: n + send.Sub(i, p).Lo,
				Dim:   -1, // generally not torus-adjacent
			})
		}
		sched.Steps = append(sched.Steps, step)
	}
	return sched, nil
}

// CheckAllToAll verifies the post-state of an AllToAll executed from
// a state where chip chips[i]'s send half had block j filled by
// fill(i, j, element): afterwards chip chips[j]'s recv half must hold
// fill(i, j, element) in block i for every i != j, and every send
// half must be untouched.
func CheckAllToAll(st State, chips []int, n int, fill func(i, j, el int) float64) error {
	p := len(chips)
	send := Range{Lo: 0, Hi: n}
	for j, chip := range chips {
		buf := st[chip]
		if len(buf) != 2*n {
			return fmt.Errorf("collective: chip %d buffer length %d, want %d", chip, len(buf), 2*n)
		}
		// Send half untouched.
		for jj := 0; jj < p; jj++ {
			block := send.Sub(jj, p)
			for el := block.Lo; el < block.Hi; el++ {
				if want := fill(j, jj, el-block.Lo); !approxEqual(buf[el], want) {
					return fmt.Errorf("collective: chip %d send block %d mutated: element %d = %v, want %v",
						chip, jj, el-block.Lo, buf[el], want)
				}
			}
		}
		// Recv half holds block i from chip i, for i != j.
		for i := 0; i < p; i++ {
			if i == j {
				continue
			}
			block := send.Sub(i, p)
			for el := block.Lo; el < block.Hi; el++ {
				got := buf[n+el]
				if want := fill(i, j, el-block.Lo); !approxEqual(got, want) {
					return fmt.Errorf("collective: chip %d recv block %d element %d = %v, want %v",
						chip, i, el-block.Lo, got, want)
				}
			}
		}
	}
	return nil
}
