package collective

import (
	"testing"
	"testing/quick"
)

func a2aFill(i, j, el int) float64 {
	return float64(i*1000 + j*10 + el%7)
}

func TestAllToAllCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8, 16} {
		for _, n := range []int{p, 4 * p, 16 * p} {
			chips := ringOf(p)
			sched, err := AllToAll("a2a", chips, n, 4, false)
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			if sched.NumSteps() != p-1 {
				t.Fatalf("p=%d: steps = %d, want %d", p, sched.NumSteps(), p-1)
			}
			if err := sched.Validate(); err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			st := NewState(chips, 2*n, nil)
			full := Range{Lo: 0, Hi: n}
			for i, chip := range chips {
				for j := 0; j < p; j++ {
					block := full.Sub(j, p)
					for el := block.Lo; el < block.Hi; el++ {
						st[chip][el] = a2aFill(i, j, el-block.Lo)
					}
				}
			}
			if err := st.Execute(sched); err != nil {
				t.Fatalf("p=%d n=%d execute: %v", p, n, err)
			}
			if err := CheckAllToAll(st, chips, n, a2aFill); err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
		}
	}
}

func TestAllToAllValidation(t *testing.T) {
	if _, err := AllToAll("x", []int{1}, 8, 4, false); err == nil {
		t.Error("1-chip all-to-all accepted")
	}
	if _, err := AllToAll("x", []int{1, 2, 1}, 8, 4, false); err == nil {
		t.Error("duplicate chips accepted")
	}
	if _, err := AllToAll("x", []int{1, 2, 3}, 8, 4, false); err == nil {
		t.Error("non-divisible buffer accepted")
	}
}

func TestAllToAllReconfigMarks(t *testing.T) {
	chips := ringOf(4)
	marked, err := AllToAll("m", chips, 64, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	// Every step pairs each chip with a new partner: reprogram each.
	if marked.Reconfigs() != 3 {
		t.Fatalf("reconfigs = %d, want 3", marked.Reconfigs())
	}
	plain, _ := AllToAll("p", chips, 64, 4, false)
	if plain.Reconfigs() != 0 {
		t.Fatal("unmarked schedule has reconfigs")
	}
}

func TestAllToAllEachChipSendsOncePerStep(t *testing.T) {
	chips := ringOf(8)
	sched, err := AllToAll("s", chips, 800, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for si, step := range sched.Steps {
		from := map[int]int{}
		to := map[int]int{}
		for _, tr := range step.Transfers {
			from[tr.From]++
			to[tr.To]++
		}
		for _, c := range chips {
			if from[c] != 1 || to[c] != 1 {
				t.Fatalf("step %d: chip %d sends %d, receives %d", si, c, from[c], to[c])
			}
		}
	}
}

// Property: the exchange conserves data — the multiset of received
// off-diagonal blocks equals the multiset of sent off-diagonal
// blocks, for arbitrary inputs and geometries.
func TestAllToAllConservation(t *testing.T) {
	f := func(pRaw, nRaw uint8, seed uint64) bool {
		p := int(pRaw%6) + 2
		n := (int(nRaw%16) + 1) * p
		chips := ringOf(p)
		sched, err := AllToAll("t", chips, n, 4, false)
		if err != nil {
			return false
		}
		st := NewState(chips, 2*n, nil)
		fill := fillRandom(seed)
		var sentSum float64
		full := Range{Lo: 0, Hi: n}
		for i, chip := range chips {
			for j := 0; j < p; j++ {
				block := full.Sub(j, p)
				for el := block.Lo; el < block.Hi; el++ {
					v := fill(chip, el)
					st[chip][el] = v
					if j != i {
						sentSum += v
					}
				}
			}
		}
		if err := st.Execute(sched); err != nil {
			return false
		}
		var recvSum float64
		for j, chip := range chips {
			for i := 0; i < p; i++ {
				if i == j {
					continue
				}
				block := full.Sub(i, p)
				for el := block.Lo; el < block.Hi; el++ {
					recvSum += st[chip][n+el]
				}
			}
		}
		return approxEqual(sentSum, recvSum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDstRange(t *testing.T) {
	tr := Transfer{Range: Range{Lo: 8, Hi: 12}, DstLo: InPlace}
	if tr.DstRange() != (Range{Lo: 8, Hi: 12}) {
		t.Fatalf("in-place dst = %v", tr.DstRange())
	}
	tr.DstLo = 0
	if tr.DstRange() != (Range{Lo: 0, Hi: 4}) {
		t.Fatalf("offset-0 dst = %v", tr.DstRange())
	}
	tr.DstLo = 20
	if tr.DstRange() != (Range{Lo: 20, Hi: 24}) {
		t.Fatalf("offset-20 dst = %v", tr.DstRange())
	}
}

func TestValidateRejectsBadDstRange(t *testing.T) {
	s := &Schedule{N: 8, ElemBytes: 4, Steps: []Step{
		{Transfers: []Transfer{{From: 0, To: 1, Range: Range{Lo: 0, Hi: 4}, DstLo: 6}}},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("destination past N accepted")
	}
}
