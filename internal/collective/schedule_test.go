package collective

import (
	"testing"
	"testing/quick"

	"lightpath/internal/unit"
)

func TestRangeBasics(t *testing.T) {
	r := Range{Lo: 4, Hi: 12}
	if r.Len() != 8 || r.Empty() {
		t.Fatalf("len/empty wrong for %v", r)
	}
	if (Range{Lo: 3, Hi: 3}).Empty() != true {
		t.Fatal("empty range not empty")
	}
	if r.String() != "[4,12)" {
		t.Fatalf("string = %q", r.String())
	}
}

func TestRangeSubPartitions(t *testing.T) {
	// Property: Sub(j, p) for j in [0, p) partitions the range exactly.
	f := func(lo uint8, length uint16, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		r := Range{Lo: int(lo), Hi: int(lo) + int(length%1000)}
		covered := 0
		prev := r.Lo
		for j := 0; j < p; j++ {
			s := r.Sub(j, p)
			if s.Lo != prev {
				return false
			}
			prev = s.Hi
			covered += s.Len()
		}
		return prev == r.Hi && covered == r.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeSubNearEven(t *testing.T) {
	r := Range{Lo: 0, Hi: 10}
	sizes := []int{}
	for j := 0; j < 3; j++ {
		sizes = append(sizes, r.Sub(j, 3).Len())
	}
	// Near-even: sizes differ by at most 1 and sum to 10.
	min, max, sum := sizes[0], sizes[0], 0
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		sum += s
	}
	if sum != 10 || max-min > 1 {
		t.Fatalf("sub sizes = %v", sizes)
	}
}

func TestRangeSubPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sub out of range did not panic")
		}
	}()
	Range{Lo: 0, Hi: 10}.Sub(3, 3)
}

func TestRangeOverlaps(t *testing.T) {
	a := Range{Lo: 0, Hi: 5}
	cases := []struct {
		b    Range
		want bool
	}{
		{Range{5, 10}, false},
		{Range{4, 10}, true},
		{Range{0, 5}, true},
		{Range{-3, 0}, false},
		{Range{2, 3}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestTransferBytes(t *testing.T) {
	tr := Transfer{Range: Range{Lo: 0, Hi: 100}}
	if got := tr.Bytes(4); got != 400 {
		t.Fatalf("bytes = %v, want 400", got)
	}
}

func TestScheduleAccessors(t *testing.T) {
	s := &Schedule{
		Name: "t", N: 8, ElemBytes: 4,
		Steps: []Step{
			{Transfers: []Transfer{{From: 3, To: 1, Range: Range{0, 4}}}, Reconfig: true},
			{Transfers: []Transfer{{From: 1, To: 2, Range: Range{4, 8}}}},
		},
	}
	chips := s.Chips()
	if len(chips) != 3 || chips[0] != 1 || chips[1] != 2 || chips[2] != 3 {
		t.Fatalf("chips = %v", chips)
	}
	if s.NumSteps() != 2 || s.Reconfigs() != 1 {
		t.Fatalf("steps = %d reconfigs = %d", s.NumSteps(), s.Reconfigs())
	}
	if got := s.TotalBytes(); got != 32 {
		t.Fatalf("total bytes = %v", got)
	}
	maxes := s.MaxBytesPerChipStep()
	if len(maxes) != 2 || maxes[0] != 16 || maxes[1] != 16 {
		t.Fatalf("maxes = %v", maxes)
	}
}

func TestScheduleValidate(t *testing.T) {
	good := &Schedule{N: 8, ElemBytes: 4, Steps: []Step{
		{Transfers: []Transfer{
			{From: 0, To: 1, Range: Range{0, 4}},
			{From: 1, To: 0, Range: Range{4, 8}},
		}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []*Schedule{
		{N: 8, Steps: []Step{{Transfers: []Transfer{{From: 1, To: 1, Range: Range{0, 4}}}}}},
		{N: 8, Steps: []Step{{Transfers: []Transfer{{From: 0, To: 1, Range: Range{0, 9}}}}}},
		{N: 8, Steps: []Step{{Transfers: []Transfer{{From: 0, To: 1, Range: Range{4, 4}}}}}},
		{N: 8, Steps: []Step{{Transfers: []Transfer{
			{From: 0, To: 2, Range: Range{0, 4}},
			{From: 1, To: 2, Range: Range{2, 6}},
		}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestConcat(t *testing.T) {
	a := &Schedule{Name: "a", N: 8, ElemBytes: 4, Steps: []Step{{}, {}}}
	b := &Schedule{Name: "b", N: 8, ElemBytes: 4, Steps: []Step{{}}}
	c, err := a.Concat("c", b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSteps() != 3 || c.Name != "c" {
		t.Fatalf("concat = %d steps, name %q", c.NumSteps(), c.Name)
	}
	mismatch := &Schedule{Name: "m", N: 9, ElemBytes: 4}
	if _, err := a.Concat("x", mismatch); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestMaxBytesPerChipStepAggregatesPerSender(t *testing.T) {
	// One chip sending two transfers in a step counts their sum.
	s := &Schedule{N: 8, ElemBytes: unit.Bytes(1), Steps: []Step{
		{Transfers: []Transfer{
			{From: 0, To: 1, Range: Range{0, 4}},
			{From: 0, To: 2, Range: Range{4, 8}},
			{From: 3, To: 4, Range: Range{0, 2}},
		}},
	}}
	maxes := s.MaxBytesPerChipStep()
	if maxes[0] != 8 {
		t.Fatalf("max = %v, want 8 (chip 0 sends 4+4)", maxes[0])
	}
}
