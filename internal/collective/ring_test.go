package collective

import (
	"testing"
	"testing/quick"

	"lightpath/internal/rng"
)

// fillRandom returns a fill function seeded per (chip, index).
func fillRandom(seed uint64) func(chip, i int) float64 {
	return func(chip, i int) float64 {
		r := rng.New(seed ^ uint64(chip)<<32 ^ uint64(i))
		return r.Float64()*10 - 5
	}
}

func ringOf(p int) []int {
	ring := make([]int, p)
	for i := range ring {
		ring[i] = 100 + i // non-contiguous IDs to catch index/ID mixups
	}
	return ring
}

func TestRingReduceScatterCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		for _, n := range []int{p, 16, 17, 100} {
			ring := ringOf(p)
			sched, own, err := RingReduceScatter("rs", ring, n, 4, nil)
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			if sched.NumSteps() != p-1 {
				t.Fatalf("p=%d: steps = %d, want %d", p, sched.NumSteps(), p-1)
			}
			st := NewState(ring, n, fillRandom(7))
			ref := ReduceAcross(st, ring, n)
			if err := st.Execute(sched); err != nil {
				t.Fatalf("p=%d n=%d execute: %v", p, n, err)
			}
			owned := map[int]Range{}
			for i, chip := range ring {
				owned[chip] = own.Owned(i)
			}
			if err := CheckReduceScatter(st, owned, ref); err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
		}
	}
}

func TestRingAllGatherCorrect(t *testing.T) {
	for _, p := range []int{2, 4, 5} {
		n := 40
		ring := ringOf(p)
		own := RingOwnership{Parent: Range{0, n}, P: p, Offset: 0}
		sched, err := RingAllGather("ag", ring, own, n, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Seed: each chip has its owned chunk filled with its ring
		// position+1, rest zero.
		st := NewState(ring, n, nil)
		want := make([]float64, n)
		for i, chip := range ring {
			r := own.Owned(i)
			for j := r.Lo; j < r.Hi; j++ {
				st[chip][j] = float64(i + 1)
				want[j] = float64(i + 1)
			}
		}
		if err := st.Execute(sched); err != nil {
			t.Fatal(err)
		}
		if err := CheckAllReduce(st, ring, want); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestRingAllReduceCorrect(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		n := 50
		ring := ringOf(p)
		sched, err := RingAllReduce("ar", ring, n, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sched.NumSteps() != 2*(p-1) {
			t.Fatalf("p=%d: steps = %d, want %d", p, sched.NumSteps(), 2*(p-1))
		}
		st := NewState(ring, n, fillRandom(11))
		ref := ReduceAcross(st, ring, n)
		if err := st.Execute(sched); err != nil {
			t.Fatal(err)
		}
		if err := CheckAllReduce(st, ring, ref); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// Property test (testing/quick): ring AllReduce computes the exact sum
// for arbitrary ring sizes, buffer lengths and inputs.
func TestRingAllReduceProperty(t *testing.T) {
	f := func(pRaw, nRaw uint8, seed uint64) bool {
		p := int(pRaw%7) + 2  // 2..8
		n := int(nRaw%64) + 1 // 1..64
		ring := ringOf(p)
		sched, err := RingAllReduce("prop", ring, n, 4, nil)
		if err != nil {
			return false
		}
		st := NewState(ring, n, fillRandom(seed))
		ref := ReduceAcross(st, ring, n)
		if err := st.Execute(sched); err != nil {
			return false
		}
		return CheckAllReduce(st, ring, ref) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRingValidation(t *testing.T) {
	if _, _, err := RingReduceScatter("x", []int{1}, 8, 4, nil); err == nil {
		t.Error("1-member ring accepted")
	}
	if _, _, err := RingReduceScatter("x", []int{1, 2, 1}, 8, 4, nil); err == nil {
		t.Error("duplicate-member ring accepted")
	}
	if _, err := RingAllGather("x", []int{1, 2}, RingOwnership{Parent: Range{0, 8}, P: 3}, 8, 4, nil); err == nil {
		t.Error("ownership/ring size mismatch accepted")
	}
	if _, err := RingAllReduce("x", nil, 8, 4, nil); err == nil {
		t.Error("nil ring accepted")
	}
}

func TestRingSchedulesValidate(t *testing.T) {
	ring := ringOf(4)
	sched, err := RingAllReduce("v", ring, 64, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
}

func TestDimResolverApplied(t *testing.T) {
	ring := []int{0, 1, 2, 3}
	sched, _, err := RingReduceScatter("d", ring, 16, 4, func(from, to int) int { return 7 })
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sched.Steps {
		for _, tr := range st.Transfers {
			if tr.Dim != 7 {
				t.Fatalf("dim = %d, want 7", tr.Dim)
			}
		}
	}
	// Nil resolver leaves -1.
	sched2, _, _ := RingReduceScatter("d2", ring, 16, 4, nil)
	if sched2.Steps[0].Transfers[0].Dim != -1 {
		t.Fatal("nil resolver should leave Dim = -1")
	}
}

// Per-step, each chip sends at most N/p elements: the ring algorithm's
// bandwidth-optimality precondition used by Table 1.
func TestRingStepPayloads(t *testing.T) {
	p, n := 8, 800
	ring := ringOf(p)
	sched, _, err := RingReduceScatter("pl", ring, n, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for si, b := range sched.MaxBytesPerChipStep() {
		if int(b) != n/p {
			t.Fatalf("step %d: max payload %v, want %d", si, b, n/p)
		}
	}
}

func TestSmallBufferYieldsEmptyChunks(t *testing.T) {
	// n < p: some chunks are empty; schedule must still be correct.
	p, n := 8, 3
	ring := ringOf(p)
	sched, own, err := RingReduceScatter("small", ring, n, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(ring, n, fillRandom(3))
	ref := ReduceAcross(st, ring, n)
	if err := st.Execute(sched); err != nil {
		t.Fatal(err)
	}
	owned := map[int]Range{}
	for i, chip := range ring {
		owned[chip] = own.Owned(i)
	}
	if err := CheckReduceScatter(st, owned, ref); err != nil {
		t.Fatal(err)
	}
}
