package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"lightpath/internal/invariant"
)

// TestSelfcheck runs the full robustness drill: a real daemon on a
// loopback port, driven over the wire through every rung of the
// degradation ladder, killed, and resumed from its checkpoint.
func TestSelfcheck(t *testing.T) {
	t.Cleanup(invariant.ResetGlobal)
	var buf bytes.Buffer
	if err := run([]string{"-selfcheck"}, &buf); err != nil {
		t.Fatalf("selfcheck failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, marker := range []string{
		"selfcheck: ok",
		"impossible deadlines refused",
		"fast breaker rejects",
		"establishes shed",
		"crash -> resume: stats identical",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("selfcheck output missing %q:\n%s", marker, out)
		}
	}
}

// TestSelfcheckDeterministicAcrossSeeds drills two different seeds:
// the ladder must hold regardless of the allocator's stochastic
// stream.
func TestSelfcheckOtherSeed(t *testing.T) {
	t.Cleanup(invariant.ResetGlobal)
	var buf bytes.Buffer
	if err := run([]string{"-selfcheck", "-seed", "99"}, &buf); err != nil {
		t.Fatalf("selfcheck with seed 99 failed: %v\n%s", err, buf.String())
	}
}

// TestRunFlagErrors pins the argument contract.
func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-tick-us", "-3"}, &buf); err == nil {
		t.Error("negative tick accepted")
	}
	if err := run([]string{"-resume"}, &buf); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
	if err := run([]string{"-resume", "-checkpoint", filepath.Join(t.TempDir(), "missing.ckpt")}, &buf); err == nil {
		t.Error("-resume from a missing checkpoint accepted")
	}
}
