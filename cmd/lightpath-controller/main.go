// Command lightpath-controller is the long-running lightpath setup
// daemon: it owns one rack's route.Allocator behind the ctrl frame
// protocol and answers establish/release/reroute/health requests with
// the full robustness ladder — bounded-queue admission, per-request
// deadlines, per-chip circuit breakers, width-halving degradation and
// load shedding. The daemon runs on logical time (each request
// advances the virtual clock by -tick-us), so the deployed binary
// exercises exactly the semantics the deterministic million-request
// campaign validated.
//
// Usage:
//
//	lightpath-controller [flags]            serve until killed
//	lightpath-controller -selfcheck         boot, drill, and exit
//
// With -checkpoint the daemon snapshots its full state (allocator,
// auditor, breakers, clock, backlog, counters) every -ckpt-every
// requests; -resume boots from that snapshot instead of empty, and a
// torn final write falls back to the previous good snapshot.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"

	"lightpath/internal/chaos"
	"lightpath/internal/ctrl"
	"lightpath/internal/unit"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lightpath-controller:", err)
		os.Exit(1)
	}
}

type printer interface{ Write(p []byte) (int, error) }

type options struct {
	listen    string
	seed      uint64
	tick      unit.Seconds
	ckptPath  string
	ckptEvery uint64
	resume    bool
}

func run(args []string, out printer) error {
	fs := flag.NewFlagSet("lightpath-controller", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8419", "TCP address to serve the ctrl frame protocol on")
	seed := fs.Uint64("seed", 2024, "deterministic seed for the allocator's stochastic components")
	tickUS := fs.Float64("tick-us", 1, "virtual microseconds each request advances the clock (0 stacks all requests on one instant)")
	ckpt := fs.String("checkpoint", "", "snapshot file for crash tolerance (empty disables)")
	ckptEvery := fs.Uint64("ckpt-every", 4096, "checkpoint cadence in requests (with -checkpoint)")
	resume := fs.Bool("resume", false, "boot from the -checkpoint snapshot instead of an empty rack")
	selfcheck := fs.Bool("selfcheck", false, "boot a daemon on a loopback port, run the robustness drill against it, and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tickUS < 0 {
		return fmt.Errorf("-tick-us %v is negative", *tickUS)
	}
	opts := options{
		listen:    *listen,
		seed:      *seed,
		tick:      unit.Seconds(*tickUS) * unit.Microsecond,
		ckptPath:  *ckpt,
		ckptEvery: *ckptEvery,
		resume:    *resume,
	}
	if *selfcheck {
		return runSelfcheck(opts, out)
	}
	return serve(opts, out)
}

// boot builds the daemon's server: fresh from config, or restored from
// the checkpoint when resuming.
func boot(opts options) (*ctrl.Server, error) {
	cfg := ctrl.DefaultConfig()
	cfg.Seed = opts.seed
	if opts.resume {
		if opts.ckptPath == "" {
			return nil, errors.New("-resume needs -checkpoint")
		}
		return ctrl.LoadCheckpoint(cfg, opts.ckptPath)
	}
	return ctrl.NewServer(cfg)
}

// serve runs the daemon until the listener dies (typically: the
// process is killed, which is exactly the crash -resume recovers from).
func serve(opts options, out printer) error {
	srv, err := boot(opts)
	if err != nil {
		return err
	}
	h := ctrl.NewHandler(srv, opts.tick)
	if opts.ckptPath != "" {
		h.SetCheckpoint(opts.ckptPath, opts.ckptEvery)
	}
	l, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	defer func() { _ = l.Close() }()
	rack := srv.Allocator().Rack()
	if _, err := fmt.Fprintf(out, "lightpath-controller: serving %d chips on %s (seed %d, tick %v, %d circuits restored)\n",
		rack.NumChips(), l.Addr(), opts.seed, opts.tick, srv.Allocator().NumCircuits()); err != nil {
		return err
	}
	if err := h.Serve(l); err != nil {
		return err
	}
	return h.CheckpointErr()
}

// runSelfcheck boots a real daemon on a loopback port and drills every
// rung of the robustness ladder over the wire: normal service, a
// hostile frame, deadline misses, breaker trips after a chip death,
// overload shedding, and checkpoint -> kill -> resume equivalence. It
// is the smoke test's first gate.
//
// The drill runs with a zero tick — every request lands on the same
// virtual instant, so the backlog never drains between submissions.
// That pins the order: the deadline and breaker rungs must run while
// the queue still has headroom, and the overload burst comes last.
func runSelfcheck(opts options, out printer) error {
	dir, err := os.MkdirTemp("", "lightpath-controller-selfcheck")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	ckpt := filepath.Join(dir, "ctrl.ckpt")

	cfg := ctrl.DefaultConfig()
	cfg.Seed = opts.seed
	cfg.QueueCap = 64
	srv, err := ctrl.NewServer(cfg)
	if err != nil {
		return err
	}
	h := ctrl.NewHandler(srv, 0)
	h.SetCheckpoint(ckpt, 64)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = l.Close() }()
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve(l) }()

	dial := func() (net.Conn, error) { return net.Dial("tcp", l.Addr().String()) }

	// Rung 0: normal service. Establish and health over the wire.
	conn, err := dial()
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	c := ctrl.NewClient(conn)
	first, err := c.Establish(0, 9, 2, unit.Millisecond)
	if err != nil {
		return fmt.Errorf("selfcheck: establish: %w", err)
	}
	if health, err := c.Health(); err != nil {
		return fmt.Errorf("selfcheck: health: %w", err)
	} else if health.Circuits != 1 {
		return fmt.Errorf("selfcheck: health reports %d circuits, want 1", health.Circuits)
	}

	// Rung 1: a hostile peer. Garbage costs that connection only.
	bad, err := dial()
	if err != nil {
		return err
	}
	if _, err := bad.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x00}); err != nil {
		return err
	}
	if err := expectClosed(bad); err != nil {
		return fmt.Errorf("selfcheck: hostile frame: %w", err)
	}
	_ = bad.Close()
	if _, err := c.Health(); err != nil {
		return fmt.Errorf("selfcheck: daemon wedged by a hostile frame: %w", err)
	}

	// Rung 2: deadlines. A budget below the establish service time can
	// never be met; every attempt must come back as the taxonomy
	// sentinel without consuming queue capacity.
	var deadline int
	for i := 0; i < 3; i++ {
		_, err := c.Establish(10+i, 20+i, 1, unit.Microsecond)
		if errors.Is(err, ctrl.ErrDeadlineExceeded) {
			deadline++
		}
	}
	if deadline != 3 {
		return fmt.Errorf("selfcheck: impossible deadline met %d of 3 times", 3-deadline)
	}

	// Rung 3: chip death -> breaker. Hammering a dead endpoint must
	// first fail cleanly, then trip its breaker and fail fast.
	victim := 40
	report, err := h.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: victim})
	if err != nil {
		return fmt.Errorf("selfcheck: fault injection: %w", err)
	}
	var endpoint, breaker int
	for i := 0; i < 4*cfg.Breaker.FailThreshold; i++ {
		_, err := c.Establish(victim, 50, 1, 0)
		switch {
		case errors.Is(err, ctrl.ErrBreakerOpen):
			breaker++
		case err != nil:
			endpoint++
		}
	}
	if endpoint != cfg.Breaker.FailThreshold || breaker != 3*cfg.Breaker.FailThreshold {
		return fmt.Errorf("selfcheck: dead chip drill: %d endpoint failures, %d breaker rejects (want %d and %d)",
			endpoint, breaker, cfg.Breaker.FailThreshold, 3*cfg.Breaker.FailThreshold)
	}

	// Rung 4: overload. Burst past the queue bound on one instant and
	// demand shedding, not buffering.
	var shed int
	for i := 0; i < 2*cfg.QueueCap; i++ {
		_, err := c.Establish(2*i%40+1, (2*i+21)%40+1, 1, 0)
		if errors.Is(err, ctrl.ErrOverloaded) {
			shed++
		}
	}
	if shed == 0 {
		return errors.New("selfcheck: overload burst produced no ErrOverloaded")
	}

	// Rung 5: crash -> resume. Snapshot now, kill the daemon, boot a
	// replacement from the checkpoint, and demand identical state.
	if err := h.Checkpoint(ckpt); err != nil {
		return fmt.Errorf("selfcheck: checkpoint: %w", err)
	}
	before := h.Stats()
	// Kill order matters: Serve drains per-connection goroutines before
	// returning, so the client hangs up first, then the listener dies.
	_ = conn.Close()
	_ = l.Close()
	if err := <-serveErr; err != nil {
		return fmt.Errorf("selfcheck: serve: %w", err)
	}
	restored, err := ctrl.LoadCheckpoint(cfg, ckpt)
	if err != nil {
		return fmt.Errorf("selfcheck: resume: %w", err)
	}
	if restored.Stats() != before {
		return fmt.Errorf("selfcheck: resumed stats diverge:\n  before %+v\n  after  %+v", before, restored.Stats())
	}
	if _, ok := restored.Allocator().CircuitByID(first.Circuit); !ok {
		return fmt.Errorf("selfcheck: circuit %d lost across resume", first.Circuit)
	}
	if err := h.CheckpointErr(); err != nil {
		return fmt.Errorf("selfcheck: periodic checkpoint: %w", err)
	}

	_, err = fmt.Fprintf(out,
		"selfcheck: ok\n"+
			"  served a circuit, survived a hostile frame, %d impossible deadlines refused\n"+
			"  chip %d killed (%d held circuits affected): %d clean endpoint failures, then %d fast breaker rejects\n"+
			"  overload burst: %d of %d establishes shed\n"+
			"  crash -> resume: stats identical, circuit %d intact\n",
		deadline, victim, len(report.Moves), endpoint, breaker,
		shed, 2*cfg.QueueCap, first.Circuit)
	return err
}

// expectClosed demands the peer close the connection without replying.
func expectClosed(conn net.Conn) error {
	buf := make([]byte, 64)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			return fmt.Errorf("peer replied with %d bytes instead of closing", n)
		}
		if err != nil {
			return nil
		}
	}
}
