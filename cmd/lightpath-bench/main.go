// Command lightpath-bench turns `go test -bench` output into the
// repo's BENCH.json report and gates paper-metric regressions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | lightpath-bench -o BENCH.json
//	go test -run '^$' -bench . -benchmem ./... | lightpath-bench -baseline BENCH_baseline.json
//
// The report records each benchmark's ns/op, B/op, allocs/op and its
// custom b.ReportMetric values ("paper metrics"). With -baseline, the
// paper metrics — and only those; timings are machine-dependent — are
// diffed against the committed baseline and any divergence fails the
// run. That is the `make bench-smoke` regression gate: a refactor
// that changes what the simulation computes cannot slip through as
// noise.
//
// With -compare, ns/op and allocs/op are additionally diffed within
// the -ns-tol and -allocs-tol multipliers. Timings are advisory —
// `make bench-compare` feeds a non-blocking CI step — but allocation
// counts are deterministic, so the tight default allocs tolerance
// catches allocation creep on the hot paths this repo optimizes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lightpath/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lightpath-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("lightpath-bench", flag.ContinueOnError)
	outPath := fs.String("o", "", "write the parsed report as JSON to this file (\"-\" for stdout)")
	basePath := fs.String("baseline", "", "diff paper metrics against this committed report; divergence fails")
	comparePath := fs.String("compare", "", "diff ns/op and allocs/op against this report within the tolerances; regression fails")
	nsTol := fs.Float64("ns-tol", 1.50, "ns/op tolerance multiplier for -compare (1.50 = 50% slower allowed)")
	allocsTol := fs.Float64("allocs-tol", 1.10, "allocs/op tolerance multiplier for -compare")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nsTol < 1 || *allocsTol < 1 {
		return fmt.Errorf("tolerances must be >= 1 (got -ns-tol %v, -allocs-tol %v)", *nsTol, *allocsTol)
	}
	rep, err := bench.Parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (forgot -bench?)")
	}
	if *outPath == "-" {
		if err := rep.WriteJSON(out); err != nil {
			return err
		}
	} else if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d benchmarks to %s\n", len(rep.Benchmarks), *outPath)
	}
	if *basePath != "" {
		f, err := os.Open(*basePath)
		if err != nil {
			return err
		}
		base, err := bench.ReadJSON(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		if diffs := bench.DiffPaperMetrics(base, rep); len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Fprintln(out, "paper-metric regression:", d)
			}
			return fmt.Errorf("%d paper metric(s) diverged from %s", len(diffs), *basePath)
		}
		fmt.Fprintf(out, "paper metrics match %s (%d benchmarks checked)\n", *basePath, len(base.Benchmarks))
	}
	if *comparePath != "" {
		f, err := os.Open(*comparePath)
		if err != nil {
			return err
		}
		base, err := bench.ReadJSON(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		if diffs := bench.CompareTimings(base, rep, *nsTol, *allocsTol); len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Fprintln(out, "timing regression:", d)
			}
			return fmt.Errorf("%d timing regression(s) vs %s", len(diffs), *comparePath)
		}
		fmt.Fprintf(out, "timings within tolerance of %s (ns/op %.2fx, allocs/op %.2fx, %d benchmarks checked)\n",
			*comparePath, *nsTol, *allocsTol, len(base.Benchmarks))
	}
	return nil
}
