package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `BenchmarkEstablish-8   	     100	   12345 ns/op	       0 B/op	       0 allocs/op	        14.20 loss_db
BenchmarkChaosPar-8    	       2	 9876543 ns/op	  887766 B/op	    5544 allocs/op	        16.00 blast_ratio
PASS
`

func TestWriteReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	var out bytes.Buffer
	if err := run([]string{"-o", path}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BenchmarkEstablish", "loss_db", "blast_ratio", "allocs_per_op"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %q:\n%s", want, data)
		}
	}
}

func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_baseline.json")
	var out bytes.Buffer
	if err := run([]string{"-o", base}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	// Same metrics pass; a changed timing is still a pass.
	faster := strings.ReplaceAll(sample, "12345 ns/op", "999 ns/op")
	if err := run([]string{"-baseline", base}, strings.NewReader(faster), &out); err != nil {
		t.Fatalf("timing-only change failed the gate: %v\n%s", err, out.String())
	}
	// A drifted paper metric fails.
	drifted := strings.ReplaceAll(sample, "14.20 loss_db", "15.00 loss_db")
	out.Reset()
	if err := run([]string{"-baseline", base}, strings.NewReader(drifted), &out); err == nil {
		t.Fatalf("paper-metric drift passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "loss_db") {
		t.Fatalf("diff does not name the metric:\n%s", out.String())
	}
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_baseline.json")
	var out bytes.Buffer
	if err := run([]string{"-o", base}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	// Within tolerance passes.
	slower := strings.ReplaceAll(sample, "12345 ns/op", "13000 ns/op")
	if err := run([]string{"-compare", base}, strings.NewReader(slower), &out); err != nil {
		t.Fatalf("in-tolerance run failed the compare gate: %v\n%s", err, out.String())
	}
	// A large slowdown fails and names the benchmark.
	out.Reset()
	much := strings.ReplaceAll(sample, "12345 ns/op", "99999999 ns/op")
	if err := run([]string{"-compare", base}, strings.NewReader(much), &out); err == nil {
		t.Fatalf("gross slowdown passed the compare gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkEstablish") {
		t.Fatalf("diff does not name the benchmark:\n%s", out.String())
	}
	// Allocation creep fails even within the ns tolerance.
	out.Reset()
	creep := strings.ReplaceAll(sample, "5544 allocs/op", "7000 allocs/op")
	if err := run([]string{"-compare", base}, strings.NewReader(creep), &out); err == nil {
		t.Fatalf("allocation creep passed the compare gate:\n%s", out.String())
	}
	// A loose -allocs-tol lets the same creep through.
	if err := run([]string{"-compare", base, "-allocs-tol", "2.0"}, strings.NewReader(creep), &out); err != nil {
		t.Fatalf("loosened allocs tolerance still failed: %v\n%s", err, out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Error("empty input accepted")
	}
	if err := run([]string{"-baseline", "/nonexistent.json"}, strings.NewReader(sample), &out); err == nil {
		t.Error("missing baseline accepted")
	}
	if err := run([]string{"-compare", "/nonexistent.json"}, strings.NewReader(sample), &out); err == nil {
		t.Error("missing compare report accepted")
	}
	if err := run([]string{"-compare", "x.json", "-ns-tol", "0.5"}, strings.NewReader(sample), &out); err == nil {
		t.Error("sub-1 tolerance accepted")
	}
	if err := run([]string{"-badflag"}, strings.NewReader(sample), &out); err == nil {
		t.Error("bad flag accepted")
	}
}
