package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEachCommand(t *testing.T) {
	cases := map[string]string{
		"info":       "tiles per wafer",
		"fig3a":      "reconfiguration latency",
		"fig3b":      "reticle stitch loss",
		"fig4":       "waveguide density",
		"table1":     "beta ratio (elec/optics) = 3.00x",
		"table2":     "1.5x",
		"fig5":       "worst electrical bandwidth drop",
		"fig6a":      "IMPOSSIBLE",
		"fig6b":      "IMPOSSIBLE",
		"fig7":       "disjoint",
		"blast":      "16x",
		"moe":        "Mixture-of-Experts",
		"soak":       "Fleet soak",
		"hostnet":    "crossover",
		"tenants":    "rescued by optics",
		"ber":        "waterfall",
		"alltoall":   "reprogramming every step",
		"repair":     "Repairability sweep",
		"scheduler":  "offline optimal",
		"show":       "Figure 6a rack",
		"scale":      "larger tori",
		"topo":       "Topology demo",
		"rail":       "Rail fabric",
		"protocols":  "rendezvous",
		"moesweep":   "bytes/expert",
		"ablate":     "decentralized",
		"controller": "Controller load",
	}
	for cmd, want := range cases {
		var buf bytes.Buffer
		args := []string{cmd}
		if cmd == "fig3b" {
			args = append(args, "-samples", "2000")
		}
		if cmd == "rail" {
			// Sub-second geometry; the acceptance-scale default belongs
			// to `make rail-smoke` and the benchmarks.
			args = append(args, "-rails", "4", "-servers", "16", "-waves", "4")
		}
		if cmd == "controller" {
			// One trial here; the acceptance-scale campaign belongs to
			// `make controller-smoke` and the golden CSV.
			args = append(args, "-trials", "1")
		}
		if err := run(args, &buf); err != nil {
			t.Errorf("%s: %v", cmd, err)
			continue
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s output missing %q:\n%s", cmd, want, buf.String())
		}
	}
}

func TestRunSweepFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"table1", "-n", "1024"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4.10KB") {
		t.Fatalf("custom -n not honored:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing command accepted")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"info", "-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var buf bytes.Buffer
	if err := run([]string{"all", "-samples", "2000", "-rails", "4", "-servers", "16", "-waves", "4", "-trials", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"Figure 3a", "Table 1", "Figure 7", "Ablation", "Controller load"} {
		if !strings.Contains(buf.String(), marker) {
			t.Errorf("all output missing %q", marker)
		}
	}
}

func TestParallelFlagOutputIdentical(t *testing.T) {
	// The -parallel flag must be invisible in the output: same bytes on
	// stdout and in the exported CSV either way.
	if raceEnabled {
		// Two full chaos campaigns don't fit the package's race-mode
		// timeout budget; the same parallel/sequential equivalence runs
		// under -race in internal/experiments (TestParallelMatchesSequential).
		t.Skip("covered under -race by internal/experiments")
	}
	outs := make(map[string]string, 2)
	csvs := make(map[string]string, 2)
	for _, par := range []string{"true", "false"} {
		dir := t.TempDir()
		var buf bytes.Buffer
		if err := run([]string{"chaos", "-trials", "3", "-parallel=" + par, "-csv", dir}, &buf); err != nil {
			t.Fatalf("-parallel=%s: %v", par, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "chaos.csv"))
		if err != nil {
			t.Fatal(err)
		}
		outs[par] = buf.String()
		csvs[par] = string(data)
	}
	if outs["true"] != outs["false"] {
		t.Errorf("stdout differs between -parallel modes:\n--- parallel ---\n%s\n--- sequential ---\n%s",
			outs["true"], outs["false"])
	}
	if csvs["true"] != csvs["false"] {
		t.Errorf("CSV differs between -parallel modes:\n--- parallel ---\n%s\n--- sequential ---\n%s",
			csvs["true"], csvs["false"])
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	if err := run([]string{"info", "-cpuprofile", cpu, "-memprofile", mem}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	for _, cmd := range []string{"fig3a", "sweep", "ber", "scheduler"} {
		if err := run([]string{cmd, "-csv", dir}, &buf); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, cmd+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: csv has %d lines", cmd, len(lines))
		}
	}
	// Non-tabular commands do not create files.
	if err := run([]string{"blast", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "blast.csv")); err == nil {
		t.Fatal("non-tabular command wrote a csv")
	}
}
