//go:build race

package main

// raceEnabled reports that this binary was built with -race; the
// slowest CLI tests skip themselves to keep the package inside the
// test timeout (their logic is race-covered at the package level in
// internal/experiments and internal/engine).
const raceEnabled = true
