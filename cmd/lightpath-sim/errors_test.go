package main

import (
	"errors"
	"strings"
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/ctrl"
	"lightpath/internal/invariant"
	"lightpath/internal/netsim"
	"lightpath/internal/route"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// The repo's error taxonomy promises that every sentinel survives the
// wrapping between the layer that raises it and the command layer:
// errors.Is must identify the failure class here, at the top of the
// stack, without string matching. Each case below provokes one
// sentinel through public API only — the same call paths the
// subcommands use — and checks both the sentinel and that the message
// still carries the human-readable context added along the way.
func TestErrorTaxonomyFromTheTop(t *testing.T) {
	newAlloc := func(t *testing.T) *route.Allocator {
		t.Helper()
		rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
		if err != nil {
			t.Fatal(err)
		}
		return route.NewAllocator(rack, nil)
	}
	stallPolicy := netsim.RetryPolicy{Detection: 1, Backoff: 0.5, BackoffFactor: 2, MaxRetries: 4}

	cases := []struct {
		name     string
		sentinel error
		context  string // substring the wrapped message must retain
		trigger  func(t *testing.T) error
	}{
		{
			name:     "dead endpoint",
			sentinel: route.ErrEndpointFailed,
			context:  "chip",
			trigger: func(t *testing.T) error {
				a := newAlloc(t)
				a.Rack().TileOf(3).FailChip()
				_, err := a.Establish(route.Request{A: 3, B: 9, Width: 1}, 0)
				return err
			},
		},
		{
			name:     "no path across cut fibers",
			sentinel: route.ErrNoPath,
			context:  "chips",
			trigger: func(t *testing.T) error {
				a := newAlloc(t)
				rack := a.Rack()
				for trunk := 0; trunk < rack.NumTrunks(); trunk++ {
					for row := 0; row < rack.Config().Rows; row++ {
						a.FailFiberRow(trunk, row)
					}
				}
				_, err := a.Establish(route.Request{A: 0, B: 40, Width: 1}, 0)
				return err
			},
		},
		{
			name:     "flow retries exhausted",
			sentinel: netsim.ErrRetriesExhausted,
			context:  "flow",
			trigger: func(t *testing.T) error {
				flows := []netsim.Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
				caps := map[string]unit.BitRate{"l": unit.GBps(1)}
				events := []netsim.Event[string]{
					{At: 0.1, Fail: []string{"l"}},
					{At: 1 << 20, Restore: []string{"l"}},
				}
				_, err := netsim.RunEvents(flows, caps, events, stallPolicy)
				return err
			},
		},
		{
			name:     "flows stalled forever",
			sentinel: netsim.ErrStalledForever,
			context:  "t=",
			trigger: func(t *testing.T) error {
				flows := []netsim.Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
				caps := map[string]unit.BitRate{"l": unit.GBps(1)}
				events := []netsim.Event[string]{{At: 0.1, Fail: []string{"l"}}}
				pol := stallPolicy
				pol.MaxRetries = 1 << 30
				_, err := netsim.RunEvents(flows, caps, events, pol)
				return err
			},
		},
		{
			name:     "controller overloaded",
			sentinel: ctrl.ErrOverloaded,
			context:  "queue",
			trigger: func(t *testing.T) error {
				s, err := ctrl.NewServer(ctrl.Config{Seed: 1, QueueCap: 2})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(invariant.ResetGlobal)
				// A same-instant burst: the queue holds 2, the rest shed.
				var last ctrl.Response
				for i := 0; i < 8; i++ {
					last, _ = s.Submit(ctrl.Request{Op: ctrl.OpEstablish, A: i % 4, B: 20 + i, Width: 1}, 0)
				}
				return last.Err()
			},
		},
		{
			name:     "deadline tighter than service",
			sentinel: ctrl.ErrDeadlineExceeded,
			context:  "exceeds deadline",
			trigger: func(t *testing.T) error {
				s, err := ctrl.NewServer(ctrl.Config{Seed: 1})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(invariant.ResetGlobal)
				// Default establish service is 2 us; a 1 us budget can
				// never be met and is refused before consuming capacity.
				resp, _ := s.Submit(ctrl.Request{
					Op: ctrl.OpEstablish, A: 0, B: 9, Width: 1, Deadline: unit.Microsecond,
				}, 0)
				return resp.Err()
			},
		},
		{
			name:     "breaker fences a dead chip",
			sentinel: ctrl.ErrBreakerOpen,
			context:  "cooling down",
			trigger: func(t *testing.T) error {
				s, err := ctrl.NewServer(ctrl.Config{
					Seed:    1,
					Breaker: ctrl.BreakerConfig{FailThreshold: 3, Cooldown: unit.Millisecond, HalfOpenProbes: 1},
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(invariant.ResetGlobal)
				if _, err := s.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: 5}, 0); err != nil {
					t.Fatal(err)
				}
				// Spaced arrivals so the queue drains: three clean
				// endpoint failures trip the region, the fourth is
				// rejected by the open breaker.
				var last ctrl.Response
				for i := 0; i < 4; i++ {
					at := unit.Seconds(i+1) * 100 * unit.Microsecond
					last, _ = s.Submit(ctrl.Request{Op: ctrl.OpEstablish, A: 5, B: 30, Width: 1}, at)
				}
				return last.Err()
			},
		},
		{
			name:     "invariant violated",
			sentinel: invariant.ErrViolated,
			context:  "violation",
			trigger: func(t *testing.T) error {
				a := newAlloc(t)
				aud := invariant.Attach(a, invariant.Paranoid)
				t.Cleanup(invariant.ResetGlobal)
				if _, err := a.Establish(route.Request{A: 0, B: 5, Width: 2}, 0); err != nil {
					t.Fatal(err)
				}
				// Hardware mutated behind the allocator: the next audit
				// must turn it into an error the top level can classify.
				if err := a.Rack().TileOf(20).Reserve(1); err != nil {
					t.Fatal(err)
				}
				aud.Audit("sabotage")
				return aud.Err()
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.trigger(t)
			if err == nil {
				t.Fatal("trigger produced no error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, sentinel) = false; wrapping broke the taxonomy", err)
			}
			if !strings.Contains(err.Error(), tc.context) {
				t.Fatalf("message %q lost its context (%q)", err, tc.context)
			}
		})
	}
}
