package main

import (
	"fmt"
	"os"
	"testing"

	"lightpath/internal/invariant"
)

// TestMain runs every subcommand test with the invariant auditor in
// Paranoid mode: each fabric the campaigns build audits the full
// registry after every circuit mutation. Under -race the full-scale
// campaign replays drop to Sampled so the package fits the race
// detector's time budget (internal/experiments audits the same
// campaign code in Paranoid mode either way). The error-taxonomy
// test provokes violations on purpose and resets the global tally,
// so a nonzero count here means a campaign corrupted real state.
func TestMain(m *testing.M) {
	mode := invariant.Paranoid
	if raceEnabled {
		mode = invariant.Sampled
	}
	invariant.SetDefaultMode(mode)
	code := m.Run()
	if n := invariant.GlobalCount(); n > 0 && code == 0 {
		fmt.Fprintf(os.Stderr, "invariant auditor recorded %d violation(s) during the test run; first: %s\n",
			n, invariant.GlobalViolations()[0])
		code = 1
	}
	os.Exit(code)
}
