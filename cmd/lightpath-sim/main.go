// Command lightpath-sim regenerates every table and figure of "A case
// for server-scale photonic connectivity" (HotNets '24) from the
// simulation, one subcommand per artifact.
//
// Usage:
//
//	lightpath-sim <command> [flags]
//
// Commands:
//
//	info      §3 headline prototype numbers (E12)
//	fig3a     MZI reconfiguration time response + fitted latency (E1)
//	fig3b     reticle stitch loss distribution + Gaussian fit (E2)
//	fig4      waveguide density and crossing budget (E3)
//	table1    Slice-1 ReduceScatter alpha-beta costs (E4)
//	table2    Slice-3 two-stage bucket costs (E5)
//	fig5      bandwidth utilization of sub-rack slices (E6)
//	show      ASCII diagrams of the paper's rack scenarios
//	scale     Figure 5a: cubes spliced into larger tori via OCSes
//	topo      generalized Topology interface demo (-topology rail|torus|mesh)
//	rail      rail-scale fabric campaign: millions of flows through the sharded solver
//	fig6a     single-rack electrical replacement infeasibility (E7)
//	fig6b     cross-rack electrical replacement infeasibility (E8)
//	fig7      optical repair of broken rings (E9)
//	repair    repairability sweep over random racks and failures
//	blast     blast radius sweep, electrical vs optical policy (E10)
//	chaos     fault-injected AllReduce: MTTR, goodput and blast radius under recovery
//	soak      multi-day fleet soak: self-healing availability under Poisson faults
//	controller  million-request lightpath-controller load campaign (X14)
//	sweep     AllReduce completion time vs buffer size (E11)
//	alltoall  AllToAll: per-step circuit reprogramming vs DOR routing (§5)
//	scheduler online reconfiguration policies vs offline optimal (§1/§5)
//	moe       dynamic Mixture-of-Experts circuit workload (§5)
//	hostnet   packetized vs circuit-switched host stacks (§1/§5)
//	protocols eager vs rendezvous on warm circuits
//	moesweep  MoE reconfiguration overhead vs payload size (§5)
//	tenants   random multi-tenant rack sweep generalizing Fig 5c
//	ber       receiver BER waterfall curve
//	ablate    the three design ablations (allocation, fiber, simultaneous)
//	all       run everything above in order
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"lightpath/internal/alloc"
	"lightpath/internal/core"
	"lightpath/internal/ctrl/loadgen"
	"lightpath/internal/engine"
	"lightpath/internal/experiments"
	"lightpath/internal/fleet"
	"lightpath/internal/netsim"
	"lightpath/internal/route"
	"lightpath/internal/topo"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
	"lightpath/internal/viz"
	"lightpath/internal/wafer"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lightpath-sim:", err)
		os.Exit(1)
	}
}

type printer interface{ Write(p []byte) (int, error) }

func run(args []string, out printer) error {
	fs := flag.NewFlagSet("lightpath-sim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2024, "deterministic seed for all stochastic components")
	elements := fs.Int("n", experiments.DefaultTableBuffer, "collective buffer length in float32 elements")
	samples := fs.Int("samples", 10000, "stitch-loss samples for fig3b")
	trials := fs.Int("trials", 8, "trials for the chaos and soak campaigns")
	csvDir := fs.String("csv", "", "directory to also write each experiment's data series as <command>.csv")
	parallel := fs.Bool("parallel", true, "fan Monte-Carlo campaigns across CPUs (output is identical either way)")
	checkpoint := fs.String("checkpoint", "", "directory for per-trial soak/controller checkpoints (enables crash tolerance)")
	resume := fs.Bool("resume", false, "resume soak/controller trials from their checkpoints instead of starting fresh")
	ckptInterval := fs.Uint64("ckpt-interval", 0, "soak/controller checkpoint cadence in event boundaries (0 = campaign default)")
	killAt := fs.Uint64("kill-at", 0, "stop every soak/controller trial at this event boundary after checkpointing (crash-injection test mode)")
	topology := fs.String("topology", "rail", "fabric for the topo command: rail, torus, or mesh")
	rails := fs.Int("rails", 0, "rail count for the rail campaign (0 = acceptance-scale default)")
	servers := fs.Int("servers", 0, "servers per rail for the rail campaign (0 = acceptance-scale default)")
	waves := fs.Int("waves", 0, "overlaid ring waves for the rail campaign (0 = acceptance-scale default)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing command (try: all)")
	}
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	engine.SetParallel(*parallel)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lightpath-sim: memprofile:", err)
				return
			}
			defer func() { _ = f.Close() }()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lightpath-sim: memprofile:", err)
			}
		}()
	}

	commands := map[string]func() error{
		"info": func() error { return emit(out, experiments.Info(), nil) },
		"fig3a": func() error {
			r, err := experiments.Fig3a(*seed)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "fig3a", r)
		},
		"fig3b": func() error {
			r, err := experiments.Fig3b(*seed, *samples)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "fig3b", r)
		},
		"fig4": func() error { return emit(out, experiments.Fig4(), nil) },
		"table1": func() error {
			r, err := experiments.Table1(*elements)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "table1", r)
		},
		"table2": func() error {
			r, err := experiments.Table2(*elements)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "table2", r)
		},
		"fig5": func() error {
			r, err := experiments.Fig5(experiments.TableBufferBytes(*elements), *seed)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "fig5", r)
		},
		"fig6a": func() error {
			r, err := experiments.Fig6a()
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "fig6a", r)
		},
		"fig6b": func() error {
			r, err := experiments.Fig6b()
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "fig6b", r)
		},
		"fig7": func() error {
			r, err := experiments.Fig7(*seed)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "fig7", r)
		},
		"blast": func() error { return emit(out, experiments.Blast(), nil) },
		"chaos": func() error {
			r, err := experiments.Chaos(*seed, *trials, experiments.TableBufferBytes(*elements))
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "chaos", r)
		},
		"soak": func() error {
			if *checkpoint != "" {
				if err := os.MkdirAll(*checkpoint, 0o755); err != nil {
					return fmt.Errorf("soak: checkpoint dir: %w", err)
				}
			}
			r, err := experiments.SoakWithOptions(*seed, *trials, experiments.SoakOptions{
				CheckpointDir:   *checkpoint,
				EveryEvents:     *ckptInterval,
				KillAfterEvents: *killAt,
				Resume:          *resume,
			})
			if errors.Is(err, fleet.ErrStopped) {
				// Crash-injection mode: trials checkpointed and halted
				// as requested; a later -resume run completes them.
				_, werr := fmt.Fprintf(out, "soak: trials stopped at event %d, checkpoints in %s\n", *killAt, *checkpoint)
				return werr
			}
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "soak", r)
		},
		"controller": func() error {
			if *checkpoint != "" {
				if err := os.MkdirAll(*checkpoint, 0o755); err != nil {
					return fmt.Errorf("controller: checkpoint dir: %w", err)
				}
			}
			r, err := experiments.ControllerWithOptions(*seed, experiments.ControllerOptions{
				Trials:          *trials,
				CheckpointDir:   *checkpoint,
				EveryEvents:     *ckptInterval,
				KillAfterEvents: *killAt,
				Resume:          *resume,
			})
			if errors.Is(err, loadgen.ErrStopped) {
				// Crash-injection mode: trials checkpointed and halted
				// as requested; a later -resume run completes them.
				_, werr := fmt.Fprintf(out, "controller: trials stopped at event %d, checkpoints in %s\n", *killAt, *checkpoint)
				return werr
			}
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "controller", r)
		},
		"sweep": func() error {
			r, err := experiments.Sweep(experiments.DefaultSweepBuffers(), *seed)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "sweep", r)
		},
		"moe":    func() error { return runMoE(out, *seed) },
		"ablate": func() error { return runAblations(out, *seed) },
		"hostnet": func() error {
			r, err := experiments.Hostnet(*seed, 400)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "hostnet", r)
		},
		"tenants": func() error {
			r, err := experiments.TenantSweep(*seed, 50)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "tenants", r)
		},
		"ber": func() error {
			r := experiments.Waterfall()
			if err := emit(out, r, nil); err != nil {
				return err
			}
			return emitCSV(*csvDir, "ber", r)
		},
		"alltoall": func() error {
			r, err := experiments.AllToAll(experiments.DefaultAllToAllBuffers())
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "alltoall", r)
		},
		"repair": func() error {
			r, err := experiments.Repairability(*seed, 60)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "repair", r)
		},
		"show": func() error { return runShow(out) },
		"protocols": func() error {
			r := experiments.Protocols()
			if err := emit(out, r, nil); err != nil {
				return err
			}
			return emitCSV(*csvDir, "protocols", r)
		},
		"moesweep": func() error {
			r, err := experiments.MoE(*seed)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "moesweep", r)
		},
		"scale": func() error {
			r, err := experiments.Scale(experiments.TableBufferBytes(*elements), *seed)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "scale", r)
		},
		"topo": func() error { return runTopology(out, *topology) },
		"rail": func() error {
			cfg := experiments.DefaultRailFabricConfig()
			if *rails > 0 {
				cfg.Rails = *rails
			}
			if *servers > 0 {
				cfg.Servers = *servers
			}
			if *waves > 0 {
				cfg.Waves = *waves
			}
			r, err := experiments.RailFabric(cfg)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "rail", r)
		},
		"scheduler": func() error {
			r, err := experiments.Scheduler(*seed, 24)
			if err := emit(out, r, err); err != nil {
				return err
			}
			return emitCSV(*csvDir, "scheduler", r)
		},
	}

	if cmd == "all" {
		order := []string{"info", "fig3a", "fig3b", "fig4", "ber", "table1", "table2",
			"show", "fig5", "scale", "topo", "rail", "tenants", "fig6a", "fig6b", "fig7", "repair",
			"blast", "chaos", "soak", "controller", "sweep", "alltoall", "scheduler", "moe", "moesweep", "hostnet",
			"protocols", "ablate"}
		for _, name := range order {
			if err := commands[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	fn, ok := commands[cmd]
	if !ok {
		return fmt.Errorf("unknown command %q", cmd)
	}
	return fn()
}

// emit prints a result's String rendering unless err is set, and —
// when a CSV directory is configured and the result carries a data
// series — writes <dir>/<name>.csv alongside.
func emit(out printer, r fmt.Stringer, err error) error {
	if err != nil {
		return err
	}
	if _, werr := fmt.Fprint(out, r.String()); werr != nil {
		return werr
	}
	return nil
}

// emitCSV writes the result's series when requested.
func emitCSV(csvDir, name string, r fmt.Stringer) error {
	if csvDir == "" {
		return nil
	}
	t, ok := r.(experiments.Tabular)
	if !ok {
		return nil
	}
	return experiments.WriteCSV(filepath.Join(csvDir, name+".csv"), t)
}

// runTopology demonstrates the generalized Topology interface: build
// the named fabric at demo scale, place a deterministic neighbor-ring
// workload through the link allocator, and solve it with the
// component-sharded max-min solver.
func runTopology(out printer, name string) error {
	var (
		fabric topo.Topology
		err    error
	)
	switch name {
	case "rail":
		fabric, err = topo.NewRail(4, 16, unit.GBps(40), unit.GBps(100))
	case "torus":
		fabric, err = topo.NewTorusFabric(torus.Shape{4, 4, 4}, unit.GBps(50))
	case "mesh":
		fabric, err = topo.NewMesh(4, wafer.DefaultConfig(), unit.GBps(200))
	default:
		return fmt.Errorf("unknown -topology %q (want rail, torus, or mesh)", name)
	}
	if err != nil {
		return err
	}
	a := route.NewLinkAllocator(fabric)
	const demoWaves = 2
	for w := 0; w < demoWaves; w++ {
		for e := 0; e < fabric.Endpoints(); e++ {
			a.Place(e, (e+1)%fabric.Endpoints(), unit.Bytes(w+1)*unit.MB)
		}
	}
	var sim netsim.Sim[int]
	res, err := sim.RunSharded(a.Flows(), a.Capacities())
	if err != nil {
		return err
	}
	link, load := a.MaxLoad()
	_, err = fmt.Fprintf(out,
		"Topology demo: %s fabric behind the generalized Topology interface\n"+
			"  %d endpoints, %d links; %d neighbor-ring flows placed by the link allocator\n"+
			"  peak link load: %d flows on link %d\n"+
			"  sharded max-min solve: makespan %v\n",
		fabric.Name(), fabric.Endpoints(), fabric.Links(), a.Len(), load, link, res.Makespan)
	return err
}

// runShow draws the paper's scenario racks.
func runShow(out printer) error {
	if _, err := fmt.Fprintln(out, "Figure 5b rack (four tenants, fully allocated):"); err != nil {
		return err
	}
	tor, a, err := alloc.Fig5b()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprint(out, viz.RackLayers(tor, a, nil)); err != nil {
		return err
	}
	sc, err := alloc.Fig6a()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(out, "\nFigure 6a rack (failed chip X, spares .):"); err != nil {
		return err
	}
	_, err = fmt.Fprint(out, viz.RackLayers(sc.Torus, sc.Alloc, map[int]bool{sc.FailedChip: true}))
	return err
}

func runMoE(out printer, seed uint64) error {
	fabric, err := core.New(core.Options{Seed: seed})
	if err != nil {
		return err
	}
	res, err := fabric.RunMoE(core.DefaultMoEConfig())
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out,
		"Mixture-of-Experts dynamic circuits (§5): %d batches\n"+
			"  circuits: %d new, %d reused, %d evicted\n"+
			"  time: %v reconfiguration + %v transfer = %v total\n"+
			"  reconfiguration overhead: %.2f%%\n",
		res.Batches, res.NewCircuits, res.ReusedCircuits, res.Evictions,
		res.ReconfigTime, res.TransferTime, res.Makespan, res.OverheadFraction()*100)
	return err
}

func runAblations(out printer, seed uint64) error {
	a, err := experiments.AblationAllocation(seed, 8)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprint(out, a.String()); err != nil {
		return err
	}
	f, err := experiments.AblationFiber(seed)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprint(out, f.String()); err != nil {
		return err
	}
	s, err := experiments.AblationSimultaneous(3 << 12)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(out, s.String())
	return err
}
