// Command lightpath-vet runs the repository's static-analysis suite:
// repo-specific analyzers that enforce determinism, unit safety, the
// package layering DAG, error handling, export documentation, and
// allocation-free hot loops (//lightpath:hotloop directives). It
// is built entirely on the standard library (go/parser + go/types) so
// the module stays dependency-free.
//
// Usage:
//
//	go run ./cmd/lightpath-vet ./...
//	go run ./cmd/lightpath-vet -only determinism,layering ./internal/...
//	go run ./cmd/lightpath-vet -json ./...
//	go run ./cmd/lightpath-vet -list
//
// It prints one finding per line in file:line:col form — or, with
// -json, a JSON array of findings for editor and CI integration — and
// exits 1 if any analyzer reported a finding, 2 on a usage or load
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lightpath/internal/analysis"
)

// jsonFinding is the -json wire form of one finding: flat, stable
// field names, positions split out so consumers need no re-parsing of
// the file:line:col string.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool and returns its exit code: 0 clean, 1 when
// findings were reported, 2 on load or usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lightpath-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: lightpath-vet [-list] [-json] [-only a,b] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}

	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}
	if *asJSON {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "lightpath-vet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "lightpath-vet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// writeJSON renders findings as an indented JSON array. An empty run
// emits [] (never null) so downstream parsers see a consistent shape.
func writeJSON(w io.Writer, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers resolves the -only flag to a subset of the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
