// Command lightpath-vet runs the repository's static-analysis suite:
// repo-specific analyzers that enforce determinism, unit safety (both
// per-package and interprocedurally), the package layering DAG, error
// handling, export documentation, allocation-free hot loops, safe
// closure capture in parallel trials, and arena borrow discipline. It
// is built entirely on the standard library (go/parser + go/types) so
// the module stays dependency-free.
//
// Usage:
//
//	go run ./cmd/lightpath-vet ./...
//	go run ./cmd/lightpath-vet -only determinism,layering ./internal/...
//	go run ./cmd/lightpath-vet -json ./...
//	go run ./cmd/lightpath-vet -sarif ./... > vet.sarif
//	go run ./cmd/lightpath-vet -counts ./...
//	go run ./cmd/lightpath-vet -write-baseline ./...
//	go run ./cmd/lightpath-vet -list
//
// Findings carry a stable hash (analyzer + module-relative file +
// message + occurrence ordinal — no line numbers, so edits above a
// finding don't change its identity). The committed baseline
// (vet_baseline.json at the module root) suppresses accepted findings
// by hash; everything else gates. Each analyzer has a severity:
// error-severity findings fail the build (exit 1), warning-severity
// findings are printed but advisory.
//
// Output is one finding per line in file:line:col form, or a JSON
// array with -json (schema: analyzer, severity, file, line, col,
// message, hash), or a SARIF 2.1.0 log with -sarif for code-scanning
// upload. Exit codes: 0 clean (or warnings only), 1 unbaselined
// error-severity findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"lightpath/internal/analysis"
)

// defaultBaseline is the baseline file name, resolved relative to the
// module root unless -baseline gives an explicit path.
const defaultBaseline = "vet_baseline.json"

// jsonFinding is the -json wire form of one finding: flat, stable
// field names, positions split out so consumers need no re-parsing of
// the file:line:col string. Hash is the same stable identity the
// baseline and SARIF fingerprints use. Suppressed marks findings the
// committed baseline forgives (included for visibility; they never
// gate).
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	Severity   string `json:"severity"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Hash       string `json:"hash"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool and returns its exit code: 0 clean or
// warnings-only, 1 when unbaselined error-severity findings were
// reported, 2 on load or usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lightpath-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log instead of file:line:col lines")
	baselinePath := fs.String("baseline", "", "suppression baseline file (default: vet_baseline.json at the module root)")
	writeBaseline := fs.Bool("write-baseline", false, "write the current findings to the baseline file and exit")
	counts := fs.Bool("counts", false, "print per-analyzer finding counts")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: lightpath-vet [-list] [-json|-sarif] [-only a,b] [-baseline file] [-write-baseline] [-counts] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "lightpath-vet: -json and -sarif are mutually exclusive")
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %-8s %s\n", a.Name, a.Severity, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}
	if *baselinePath == "" {
		*baselinePath = filepath.Join(root, defaultBaseline)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}

	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}

	if *writeBaseline {
		b := analysis.NewBaseline(root, findings)
		if err := b.Write(*baselinePath); err != nil {
			fmt.Fprintln(stderr, "lightpath-vet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "lightpath-vet: wrote %d finding(s) to %s\n", len(b.Findings), *baselinePath)
		return 0
	}

	baseline, err := analysis.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "lightpath-vet:", err)
		return 2
	}
	fresh, suppressed := baseline.Filter(root, findings)

	switch {
	case *asSARIF:
		// SARIF carries every finding — code-scanning consumers do their
		// own triage — with the stable hash as a partial fingerprint.
		if err := analysis.WriteSARIF(stdout, root, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "lightpath-vet:", err)
			return 2
		}
	case *asJSON:
		if err := writeJSON(stdout, root, findings, baseline); err != nil {
			fmt.Fprintln(stderr, "lightpath-vet:", err)
			return 2
		}
	default:
		for _, f := range fresh {
			fmt.Fprintln(stdout, f)
		}
	}

	if *counts {
		printCounts(stderr, analyzers, fresh, suppressed)
	}

	freshErrors := 0
	for _, f := range fresh {
		if f.Severity == analysis.SevError {
			freshErrors++
		}
	}
	if freshErrors > 0 {
		fmt.Fprintf(stderr, "lightpath-vet: %d error finding(s) in %d package(s)", freshErrors, len(pkgs))
		if w := len(fresh) - freshErrors; w > 0 {
			fmt.Fprintf(stderr, " (+%d warning(s))", w)
		}
		if len(suppressed) > 0 {
			fmt.Fprintf(stderr, " (%d baselined)", len(suppressed))
		}
		fmt.Fprintln(stderr)
		return 1
	}
	if len(fresh) > 0 {
		fmt.Fprintf(stderr, "lightpath-vet: %d warning(s) in %d package(s), no errors\n", len(fresh), len(pkgs))
	}
	return 0
}

// printCounts renders a per-analyzer finding tally, fresh and
// baselined separately, in suite order. Analyzers with zero findings
// are listed too: "0" is a result worth seeing in CI logs.
func printCounts(w io.Writer, analyzers []*analysis.Analyzer, fresh, suppressed []analysis.Finding) {
	freshBy := analysis.CountByAnalyzer(fresh)
	supBy := analysis.CountByAnalyzer(suppressed)
	fmt.Fprintln(w, "lightpath-vet: findings by analyzer:")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-12s %-8s %3d", a.Name, a.Severity, freshBy[a.Name])
		if supBy[a.Name] > 0 {
			fmt.Fprintf(w, " (+%d baselined)", supBy[a.Name])
		}
		fmt.Fprintln(w)
	}
}

// writeJSON renders every finding as an indented JSON array in
// position order, with baselined ones marked suppressed. Hashes are
// computed over the whole set so occurrence ordinals — and therefore
// hashes — match the baseline's. An empty run emits [] (never null)
// so downstream parsers see a consistent shape.
func writeJSON(w io.Writer, moduleRoot string, findings []analysis.Finding, baseline *analysis.Baseline) error {
	known := make(map[string]bool, len(baseline.Findings))
	for _, e := range baseline.Findings {
		known[e.Hash] = true
	}
	hashes := analysis.HashFindings(moduleRoot, findings)
	out := make([]jsonFinding, 0, len(findings))
	for i, f := range findings {
		out = append(out, jsonFinding{
			Analyzer:   f.Analyzer,
			Severity:   f.Severity.String(),
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Message:    f.Message,
			Hash:       hashes[i],
			Suppressed: known[hashes[i]],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectAnalyzers resolves the -only flag to a subset of the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
