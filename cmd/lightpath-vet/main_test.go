package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"lightpath/internal/analysis"
)

// TestRepoIsClean is the acceptance gate for the analyzer suite: the
// repository itself must pass every lightpath-vet analyzer. A failure
// here means a change reintroduced a determinism, unit-safety,
// layering, error-handling, or documentation violation.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("lightpath-vet ./... exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"determinism", "unitsafety", "layering", "errdrop", "exportdoc", "hotalloc"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestOnlySelectsSubset(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "layering", "./internal/unit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-only layering ./internal/unit exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-only nope exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestJSONOutputCleanRun(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-json", "./internal/unit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-json ./internal/unit exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
	var got []jsonFinding
	if err := json.Unmarshal([]byte(stdout.String()), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(got) != 0 {
		t.Fatalf("clean package produced findings: %v", got)
	}
	// The empty case must still be an array, not null.
	if !strings.HasPrefix(strings.TrimSpace(stdout.String()), "[") {
		t.Fatalf("empty run did not emit an array: %q", stdout.String())
	}
}

func TestWriteJSONFieldMapping(t *testing.T) {
	var b strings.Builder
	findings := []analysis.Finding{{
		Analyzer: "unitsafety",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "exact equality on unit.Seconds",
	}}
	if err := writeJSON(&b, findings); err != nil {
		t.Fatal(err)
	}
	var got []jsonFinding
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatal(err)
	}
	want := jsonFinding{Analyzer: "unitsafety", File: "x.go", Line: 3, Col: 7,
		Message: "exact equality on unit.Seconds"}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("round-trip = %+v, want %+v", got, want)
	}
}
