package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lightpath/internal/analysis"
)

// TestRepoIsClean is the acceptance gate for the analyzer suite: the
// repository itself must pass every lightpath-vet analyzer with an
// empty effective baseline. A failure here means a change
// reintroduced a determinism, unit-safety, layering, error-handling,
// concurrency-capture, arena-escape, or documentation violation.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("lightpath-vet ./... exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if out := stdout.String(); out != "" {
		t.Fatalf("lightpath-vet ./... printed findings:\n%s", out)
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{
		"determinism", "unitsafety", "unittaint", "layering", "errdrop",
		"exportdoc", "hotalloc", "parcapture", "arenaescape",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestOnlySelectsSubset(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "layering", "./internal/unit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-only layering ./internal/unit exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-only nope exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestJSONAndSARIFAreExclusive(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-json", "-sarif", "./internal/unit"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-json -sarif exited %d, want 2", code)
	}
}

func TestJSONOutputCleanRun(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-json", "./internal/unit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-json ./internal/unit exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
	var got []jsonFinding
	if err := json.Unmarshal([]byte(stdout.String()), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(got) != 0 {
		t.Fatalf("clean package produced findings: %v", got)
	}
	// The empty case must still be an array, not null.
	if !strings.HasPrefix(strings.TrimSpace(stdout.String()), "[") {
		t.Fatalf("empty run did not emit an array: %q", stdout.String())
	}
}

// TestSARIFOutputCleanRun checks the SARIF envelope: version 2.1.0,
// one run, the full rule set even when there are no results.
func TestSARIFOutputCleanRun(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-sarif", "./internal/unit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-sarif ./internal/unit exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("sarif runs = %d, want 1", len(log.Runs))
	}
	if got := log.Runs[0].Tool.Driver.Name; got != "lightpath-vet" {
		t.Errorf("driver name = %q, want lightpath-vet", got)
	}
	if got, want := len(log.Runs[0].Tool.Driver.Rules), len(analysis.All()); got != want {
		t.Errorf("sarif rules = %d, want %d (one per analyzer)", got, want)
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("clean package produced %d sarif results", len(log.Runs[0].Results))
	}
}

// TestBaselineSuppressesFindings runs the suite over the errdrop
// fixture (known-dirty), writes a baseline from its findings, and
// re-runs with that baseline: the second run must exit clean with
// everything suppressed.
func TestBaselineSuppressesFindings(t *testing.T) {
	// Patterns resolve relative to the module root, not the test's cwd.
	fixture := "./internal/analysis/testdata/src/errdrop"
	bl := filepath.Join(t.TempDir(), "baseline.json")

	// A dirty run with an empty baseline gates.
	var stdout, stderr strings.Builder
	if code := run([]string{"-baseline", bl, "-only", "errdrop", fixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("dirty fixture exited %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", bl, "-write-baseline", "-only", "errdrop", fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if _, err := os.Stat(bl); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// With the baseline in force the same findings no longer gate, and
	// -json marks them suppressed.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", bl, "-json", "-only", "errdrop", fixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
	var got []jsonFinding
	if err := json.Unmarshal([]byte(stdout.String()), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("baselined run reported no findings in -json output; suppressed findings should still be listed")
	}
	for _, f := range got {
		if !f.Suppressed {
			t.Errorf("finding not suppressed by its own baseline: %+v", f)
		}
		if f.Hash == "" {
			t.Errorf("finding missing hash: %+v", f)
		}
		if f.Severity == "" {
			t.Errorf("finding missing severity: %+v", f)
		}
	}
}

// TestCountsOutput checks that -counts prints a per-analyzer tally
// including zero rows.
func TestCountsOutput(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-counts", "./internal/unit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-counts exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "findings by analyzer") {
		t.Fatalf("-counts printed no tally:\n%s", out)
	}
	for _, name := range []string{"determinism", "parcapture", "arenaescape", "unittaint"} {
		if !strings.Contains(out, name) {
			t.Errorf("-counts tally missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestWriteJSONFieldMapping(t *testing.T) {
	var b strings.Builder
	findings := []analysis.Finding{{
		Analyzer: "unitsafety",
		Severity: analysis.SevError,
		Pos:      token.Position{Filename: "/mod/x.go", Line: 3, Column: 7},
		Message:  "exact equality on unit.Seconds",
	}}
	baseline := &analysis.Baseline{Version: analysis.BaselineVersion}
	if err := writeJSON(&b, "/mod", findings, baseline); err != nil {
		t.Fatal(err)
	}
	var got []jsonFinding
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatal(err)
	}
	want := jsonFinding{Analyzer: "unitsafety", Severity: "error", File: "/mod/x.go",
		Line: 3, Col: 7, Message: "exact equality on unit.Seconds",
		Hash: findings[0].Hash("/mod", 0)}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("round-trip = %+v, want %+v", got, want)
	}
}
