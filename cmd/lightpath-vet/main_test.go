package main

import (
	"strings"
	"testing"
)

// TestRepoIsClean is the acceptance gate for the analyzer suite: the
// repository itself must pass every lightpath-vet analyzer. A failure
// here means a change reintroduced a determinism, unit-safety,
// layering, error-handling, or documentation violation.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("lightpath-vet ./... exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"determinism", "unitsafety", "layering", "errdrop", "exportdoc"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestOnlySelectsSubset(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "layering", "./internal/unit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-only layering ./internal/unit exited %d\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-only nope exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}
