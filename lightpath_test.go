package lightpath_test

import (
	"testing"

	"lightpath"
)

// These tests exercise the public facade exactly as a downstream user
// would; the behavioral depth lives in the internal packages' suites.

func TestFacadeQuickstart(t *testing.T) {
	fabric, err := lightpath.New(lightpath.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fabric.Torus().Size() != 64 {
		t.Fatalf("default fabric = %d chips", fabric.Torus().Size())
	}
	c, err := fabric.Circuits().Establish(lightpath.CircuitRequest{A: 0, B: 63, Width: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Link.Feasible {
		t.Fatalf("circuit infeasible: %v", c.Link)
	}
	fabric.Circuits().Release(c)
}

func TestFacadeCustomShape(t *testing.T) {
	fabric, err := lightpath.New(lightpath.Options{
		RackShape: lightpath.Shape{4, 4, 2},
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fabric.Torus().Size() != 32 {
		t.Fatalf("custom fabric = %d chips", fabric.Torus().Size())
	}
	if fabric.Hardware().NumWafers() != 1 {
		t.Fatalf("wafers = %d, want 1 for 32 chips", fabric.Hardware().NumWafers())
	}
}

func TestFacadeAllocationAndPlan(t *testing.T) {
	tor := lightpath.NewTorus(lightpath.Shape{4, 4, 4})
	slices := []*lightpath.Slice{
		{Name: "mine", Origin: lightpath.Coord{0, 0, 0}, Shape: lightpath.Shape{4, 4, 1}},
	}
	a, err := lightpath.NewAllocation(tor, slices)
	if err != nil {
		t.Fatal(err)
	}
	fabric, err := lightpath.New(lightpath.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fabric.PlanAllReduce(a, 0, 16*lightpath.MB)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Speedup() <= 1 {
		t.Fatalf("speedup = %v", plan.Speedup())
	}
}

func TestFacadeFig5bAndUtilization(t *testing.T) {
	_, a, err := lightpath.Fig5bAllocation()
	if err != nil {
		t.Fatal(err)
	}
	rep := lightpath.UtilizationReport(a)
	if len(rep) != 4 {
		t.Fatalf("report rows = %d", len(rep))
	}
}

func TestFacadeBlastRadius(t *testing.T) {
	if stats := lightpath.BlastRadius(); stats.Ratio != 16 {
		t.Fatalf("ratio = %v", stats.Ratio)
	}
}

func TestFacadeMoE(t *testing.T) {
	fabric, err := lightpath.New(lightpath.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := lightpath.DefaultMoEConfig()
	cfg.Batches = 4
	res, err := fabric.RunMoE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 4 || res.Makespan <= 0 {
		t.Fatalf("moe = %+v", res)
	}
}

// TestEndToEndStory drives a full scenario through the public API
// only: lease tenants on a custom rack, plan their collectives,
// run a dynamic workload, and check the fabric dashboard.
func TestEndToEndStory(t *testing.T) {
	fabric, err := lightpath.New(lightpath.Options{
		RackShape: lightpath.Shape{4, 4, 2},
		Seed:      99,
	})
	if err != nil {
		t.Fatal(err)
	}
	tor := fabric.Torus()
	slices := []*lightpath.Slice{
		{Name: "tenant-a", Origin: lightpath.Coord{0, 0, 0}, Shape: lightpath.Shape{4, 4, 1}},
		{Name: "tenant-b", Origin: lightpath.Coord{0, 0, 1}, Shape: lightpath.Shape{4, 2, 1}},
	}
	a, err := lightpath.NewAllocation(tor, slices)
	if err != nil {
		t.Fatal(err)
	}
	for si := range slices {
		plan, err := fabric.PlanAllReduce(a, si, 8*lightpath.MB)
		if err != nil {
			t.Fatalf("%s: %v", slices[si].Name, err)
		}
		if plan.Speedup() <= 1 {
			t.Fatalf("%s: speedup %v", slices[si].Name, plan.Speedup())
		}
	}
	moe := lightpath.DefaultMoEConfig()
	moe.Chips = 16
	moe.Batches = 4
	if _, err := fabric.RunMoE(moe); err != nil {
		t.Fatal(err)
	}
	if status := fabric.Status(); len(status) == 0 {
		t.Fatal("empty status")
	}
}
