// Package lightpath is a simulator and systems library reproducing
// "A case for server-scale photonic connectivity" (HotNets '24): the
// LIGHTPATH server-scale photonic interconnect, the TPUv4-style
// direct-connect torus substrate it is evaluated against, the
// collective-communication algorithms and alpha-beta-r cost model of
// §4.1, and the failure-repair machinery of §4.2.
//
// The package is a thin facade over the internal implementation:
//
//	fabric, err := lightpath.New(lightpath.Options{Seed: 42})
//	plan, err := fabric.PlanAllReduce(allocation, sliceIndex, 64*lightpath.MB)
//	fmt.Printf("optical speedup: %.1fx\n", plan.Speedup())
//
// See the examples directory for runnable programs and DESIGN.md for
// the system inventory and per-experiment index.
package lightpath

import (
	"lightpath/internal/alloc"
	"lightpath/internal/core"
	"lightpath/internal/failure"
	"lightpath/internal/route"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// Core fabric types.
type (
	// Fabric is a multi-accelerator server interconnected by
	// LIGHTPATH wafers.
	Fabric = core.Fabric
	// Options configures New.
	Options = core.Options
	// CollectivePlan compares a collective on electrical vs photonic
	// interconnects.
	CollectivePlan = core.CollectivePlan
	// SliceUtilization is one bar pair of the paper's Figure 5c.
	SliceUtilization = core.SliceUtilization
	// MoEConfig parameterizes the dynamic Mixture-of-Experts workload
	// of the paper's §5.
	MoEConfig = core.MoEConfig
	// MoEResult summarizes a MoE run.
	MoEResult = core.MoEResult
	// RepairComparison is the outcome of handling one chip failure
	// electrically and optically.
	RepairComparison = core.RepairComparison
	// ChaosPolicy configures failure detection and repair for a
	// fault-injected collective (Fabric.RunAllReduceUnderFault).
	ChaosPolicy = core.ChaosPolicy
	// ChaosOutcome reports one fault-injected AllReduce run: whether
	// the math survived, the MTTR split, and the blast radii.
	ChaosOutcome = core.ChaosOutcome
)

// Torus substrate types.
type (
	// Shape is a torus/slice extent vector, e.g. Shape{4, 4, 4}.
	Shape = torus.Shape
	// Coord is a chip position.
	Coord = torus.Coord
	// Torus is a direct-connect accelerator torus.
	Torus = torus.Torus
	// Slice is a tenant's sub-torus.
	Slice = torus.Slice
	// Allocation is a set of slices on one torus.
	Allocation = torus.Allocation
	// BlastRadiusStats compares the fault policies' blast radii.
	BlastRadiusStats = failure.BlastRadiusStats
)

// Circuit management types (Fabric.Circuits()).
type (
	// CircuitRequest asks for an optical circuit between two chips.
	CircuitRequest = route.Request
	// Circuit is an established chip-to-chip optical circuit.
	Circuit = route.Circuit
	// CircuitAllocator establishes and releases circuits.
	CircuitAllocator = route.Allocator
)

// Data size and time units.
type (
	// Bytes is a data size.
	Bytes = unit.Bytes
	// Seconds is a simulated duration.
	Seconds = unit.Seconds
)

// Re-exported size constants.
const (
	KB = unit.KB
	MB = unit.MB
	GB = unit.GB
)

// New builds a photonic fabric; zero-valued options take the paper's
// defaults (TPUv4 4x4x4 rack on two 32-tile wafers).
func New(opts Options) (*Fabric, error) { return core.New(opts) }

// NewTorus builds a direct-connect torus of the given shape.
func NewTorus(shape Shape) *Torus { return torus.New(shape) }

// NewAllocation validates tenant slices on a torus.
func NewAllocation(t *Torus, slices []*Slice) (*Allocation, error) {
	return torus.NewAllocation(t, slices)
}

// UtilizationReport computes Figure 5c for an allocation.
func UtilizationReport(a *Allocation) []SliceUtilization {
	return core.UtilizationReport(a)
}

// DefaultMoEConfig is a small MoE inference setting.
func DefaultMoEConfig() MoEConfig { return core.DefaultMoEConfig() }

// DefaultChaosPolicy is the failure-lifecycle default: 10 us
// detection, width-4 repair circuits.
func DefaultChaosPolicy() ChaosPolicy { return core.DefaultChaosPolicy() }

// BlastRadius sweeps chip failures over a TPUv4-scale cluster and
// compares the rack-granularity electrical policy against
// server-granularity optical repair.
func BlastRadius() BlastRadiusStats { return core.BlastRadius() }

// Fig5bAllocation reconstructs the paper's Figure 5b rack: four
// tenants fully occupying a 4x4x4 cube.
func Fig5bAllocation() (*Torus, *Allocation, error) { return alloc.Fig5b() }
