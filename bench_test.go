// Benchmark harness: one benchmark per paper table and figure (the
// E1-E12 index in DESIGN.md) plus the design ablations. Each
// benchmark regenerates its artifact end to end per iteration and
// reports the paper-relevant figure of merit as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation and prints the headline numbers
// (beta ratios, speedups, blast-radius shrinkage, reconfiguration
// latency) alongside the usual ns/op.
package lightpath_test

import (
	"testing"

	"lightpath/internal/experiments"
	"lightpath/internal/unit"
)

// BenchmarkFig3aReconfigLatency regenerates Figure 3a (E1): the MZI
// step-response simulation plus exponential fit. Metric: fitted
// reconfiguration latency in microseconds (paper: 3.7).
func BenchmarkFig3aReconfigLatency(b *testing.B) {
	var latency unit.Seconds
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3a(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		latency = res.Latency
	}
	b.ReportMetric(latency.Micros(), "latency_us")
}

// BenchmarkFig3bStitchLoss regenerates Figure 3b (E2): stitch-loss
// sampling, histogram and Gaussian fit. Metric: fitted center in dB
// (paper: ~0.25).
func BenchmarkFig3bStitchLoss(b *testing.B) {
	var center float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3b(uint64(i), 10000)
		if err != nil {
			b.Fatal(err)
		}
		center = res.FitMean
	}
	b.ReportMetric(center, "center_dB")
}

// BenchmarkFig4WaveguideDensity regenerates Figure 4 (E3). Metric:
// waveguides per tile (paper: 10,000).
func BenchmarkFig4WaveguideDensity(b *testing.B) {
	var wg int
	for i := 0; i < b.N; i++ {
		wg = experiments.Fig4().WaveguidesPerTile
	}
	b.ReportMetric(float64(wg), "waveguides")
}

// BenchmarkTable1Slice1Costs regenerates Table 1 (E4). Metric: the
// electrical/optical beta ratio (paper: 3).
func BenchmarkTable1Slice1Costs(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table1(experiments.DefaultTableBuffer)
		if err != nil {
			b.Fatal(err)
		}
		ratio = tbl.BetaRatio
	}
	b.ReportMetric(ratio, "beta_ratio")
}

// BenchmarkTable2Slice3Costs regenerates Table 2 (E5). Metric: the
// total beta ratio (paper: 1.5).
func BenchmarkTable2Slice3Costs(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table2(experiments.DefaultTableBuffer)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(tbl.TotalElecBeta() / tbl.TotalOptBeta())
	}
	b.ReportMetric(ratio, "beta_ratio")
}

// BenchmarkFig5Underutilization regenerates Figure 5b/5c (E6): the
// four-tenant rack, per-slice utilizations and end-to-end plans.
// Metric: worst electrical bandwidth drop (paper: 0.66).
func BenchmarkFig5Underutilization(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(64*unit.MB, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		drop = res.MaxDrop
	}
	b.ReportMetric(drop, "max_drop")
}

// BenchmarkFig6aSingleRack regenerates Figure 6a (E7): the exhaustive
// proof that no congestion-free electrical replacement exists in the
// single-rack scenario. Metric: best plan's congestion units (>0).
func BenchmarkFig6aSingleRack(b *testing.B) {
	var congestion int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		if res.ElectricalPossible {
			b.Fatal("figure 6a claim violated")
		}
		congestion = res.BestCongestion
	}
	b.ReportMetric(float64(congestion), "congestion")
}

// BenchmarkFig6bCrossRack regenerates Figure 6b (E8): the cross-rack
// variant over the OCS.
func BenchmarkFig6bCrossRack(b *testing.B) {
	var congestion int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		if res.ElectricalPossible {
			b.Fatal("figure 6b claim violated")
		}
		congestion = res.BestCongestion
	}
	b.ReportMetric(float64(congestion), "congestion")
}

// BenchmarkFig7OpticalRepair regenerates Figure 7 (E9): optical
// repair circuits on disjoint waveguides. Metric: time until the
// repaired rings resume, in microseconds (paper: 3.7).
func BenchmarkFig7OpticalRepair(b *testing.B) {
	var ready unit.Seconds
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Disjoint {
			b.Fatal("circuits overlap")
		}
		ready = res.ReadyIn
	}
	b.ReportMetric(ready.Micros(), "ready_us")
}

// BenchmarkBlastRadius regenerates the §4.2 blast-radius sweep (E10)
// over all 4096 chips of a TPUv4-scale cluster. Metric: shrinkage
// factor (paper: rack -> server, 16x).
func BenchmarkBlastRadius(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = experiments.Blast().Stats.Ratio
	}
	b.ReportMetric(ratio, "shrinkage_x")
}

// BenchmarkAllReduceEndToEnd is E11: the buffer-size sweep locating
// the electrical/optical crossover. Sub-benchmarks per buffer size;
// metric: optical speedup at that size.
func BenchmarkAllReduceEndToEnd(b *testing.B) {
	for _, buf := range []unit.Bytes{64 * unit.KiB, unit.MiB, 16 * unit.MiB, 256 * unit.MiB} {
		b.Run(buf.String(), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Sweep([]unit.Bytes{buf}, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				speedup = res.Points[0].Speedup
			}
			b.ReportMetric(speedup, "speedup_x")
		})
	}
}

// BenchmarkAblationAllocation compares centralized vs decentralized
// circuit allocation (§5). Metric: decentralized attempt overhead.
func BenchmarkAblationAllocation(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationAllocation(uint64(i), 8)
		if err != nil {
			b.Fatal(err)
		}
		overhead = float64(res.DecentralAttempts) / float64(res.CentralAttempts)
	}
	b.ReportMetric(overhead, "attempts_x")
}

// BenchmarkAblationFiberPacking compares fiber packing vs spreading
// (§5). Metric: spare trunk rows preserved by packing.
func BenchmarkAblationFiberPacking(b *testing.B) {
	var spare int
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationFiber(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		spare = res.SpareRowsPacked
	}
	b.ReportMetric(float64(spare), "spare_rows")
}

// BenchmarkAblationSimultaneousBucket verifies the §4.1 equivalence:
// redirected single bucket (optical) equals the electrical
// simultaneous buffer-split bucket in beta. Metric: beta ratio (~1).
func BenchmarkAblationSimultaneousBucket(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSimultaneous(3 << 12)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(res.RedirectedBeta / res.SimultaneousBeta)
	}
	b.ReportMetric(ratio, "beta_ratio")
}

// BenchmarkHostnetStacks compares today's packetized host stack with
// the circuit-switched one the paper says optics will necessitate
// (§1/§5). Metric: the one-shot message-size crossover in KB.
func BenchmarkHostnetStacks(b *testing.B) {
	var crossover unit.Bytes
	for i := 0; i < b.N; i++ {
		res, err := experiments.Hostnet(uint64(i), 200)
		if err != nil {
			b.Fatal(err)
		}
		crossover = res.CrossoverSize
	}
	b.ReportMetric(float64(crossover)/1024, "crossover_KB")
}

// BenchmarkTenantSweep generalizes Figure 5c over random multi-tenant
// packings. Metric: mean electrical utilization (optical is 1.0).
func BenchmarkTenantSweep(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TenantSweep(uint64(i), 25)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.ElecMean
	}
	b.ReportMetric(mean, "elec_util")
}

// BenchmarkAllToAll quantifies §5's hard case: the shifted exchange
// with per-step optical reprogramming versus dimension-ordered
// electrical routing. Metric: optical speedup at 64 MB per chip.
func BenchmarkAllToAll(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AllToAll([]unit.Bytes{64 * unit.MiB})
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Points[0].Speedup
	}
	b.ReportMetric(speedup, "speedup_x")
}

// BenchmarkRepairability sweeps random rack/failure scenarios and
// reports the fraction repairable congestion-free electrically
// (optics repairs 100%). Metric: electrical success fraction.
func BenchmarkRepairability(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Repairability(uint64(i), 40)
		if err != nil {
			b.Fatal(err)
		}
		frac = float64(res.ElectricalOK) / float64(res.Trials)
	}
	b.ReportMetric(frac, "elec_ok")
}

// BenchmarkScheduler runs the §1/§5 resource-allocation policy study.
// Metric: the hysteresis policy's competitive ratio against the
// offline optimum, averaged over the table.
func BenchmarkScheduler(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scheduler(uint64(i), 16)
		if err != nil {
			b.Fatal(err)
		}
		sum, n := 0.0, 0
		for _, row := range res.Rows {
			if row.Optimal > 0 {
				sum += float64(row.Hysteresis / row.Optimal)
				n++
			}
		}
		ratio = sum / float64(n)
	}
	b.ReportMetric(ratio, "competitive_x")
}
