# Developer entry points for the tier-1 verify + static-analysis
# pipeline. CI (.github/workflows/ci.yml) runs the same steps; `make`
# with no arguments runs everything.

GO ?= go

.PHONY: all build test race lint fmt vet check chaos-smoke

all: check

## build: compile every package.
build:
	$(GO) build ./...

## test: run the tier-1 test suite.
test:
	$(GO) test ./...

## race: run the test suite under the race detector.
race:
	$(GO) test -race ./...

## lint: formatting check, go vet, and the repo-specific analyzers.
lint: fmt vet
	$(GO) run ./cmd/lightpath-vet ./...

## fmt: fail if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

## vet: run the standard Go vet suite.
vet:
	$(GO) vet ./...

## chaos-smoke: run the fault-injection experiment with the pinned seed
## and diff its CSV against the committed golden. Any divergence means
## the failure lifecycle lost bit-for-bit determinism.
chaos-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/lightpath-sim chaos -seed 2024 -trials 8 -n 262144 -csv $$tmp >/dev/null && \
	diff -u cmd/lightpath-sim/testdata/chaos_golden.csv $$tmp/chaos.csv; \
	rc=$$?; rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "chaos CSV diverged from golden (seed 2024)" >&2; exit 1; fi

## check: everything CI runs, in the same order.
check: build lint race chaos-smoke
