# Developer entry points for the tier-1 verify + static-analysis
# pipeline. CI (.github/workflows/ci.yml) runs the same steps; `make`
# with no arguments runs everything.

GO ?= go

.PHONY: all build test race lint fmt vet vet-baseline vet-sarif check chaos-smoke soak-smoke soak-resume-smoke rail-smoke controller-smoke bench bench-smoke bench-compare

all: check

## build: compile every package.
build:
	$(GO) build ./...

## test: run the tier-1 test suite.
test:
	$(GO) test ./...

## race: run the test suite under the race detector.
race:
	$(GO) test -race -timeout 20m ./...

## lint: formatting check, go vet, and the repo-specific analyzers
## (per-analyzer counts printed; unbaselined error findings fail).
lint: fmt vet
	$(GO) run ./cmd/lightpath-vet -counts ./...

## vet-baseline: accept the current lightpath-vet findings as known
## debt by regenerating vet_baseline.json. Review the diff before
## committing — every entry is a suppressed finding.
vet-baseline:
	$(GO) run ./cmd/lightpath-vet -write-baseline ./...

## vet-sarif: write the suite's findings as SARIF 2.1.0 to vet.sarif
## for code-scanning upload.
vet-sarif:
	$(GO) run ./cmd/lightpath-vet -sarif ./... > vet.sarif || true

## fmt: fail if any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

## vet: run the standard Go vet suite.
vet:
	$(GO) vet ./...

## chaos-smoke: run the fault-injection experiment with the pinned seed
## — once parallel, once sequential — and diff both CSVs against the
## committed golden. Any divergence means the failure lifecycle lost
## bit-for-bit determinism (or the parallel engine broke its contract).
chaos-smoke:
	@tmp=$$(mktemp -d); rc=0; \
	for par in true false; do \
		$(GO) run ./cmd/lightpath-sim chaos -seed 2024 -trials 8 -n 262144 -parallel=$$par -csv $$tmp >/dev/null && \
		diff -u cmd/lightpath-sim/testdata/chaos_golden.csv $$tmp/chaos.csv || rc=1; \
	done; rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "chaos CSV diverged from golden (seed 2024)" >&2; exit 1; fi

## soak-smoke: run the fleet availability soak with the pinned seed —
## once parallel, once sequential, both under the race detector — and
## diff the CSVs against the committed golden. Every trial runs with
## the Paranoid invariant auditor; a nonzero violation count shows up
## as a golden diff in the violations column, and lost determinism as
## any other diff.
soak-smoke:
	@tmp=$$(mktemp -d); rc=0; \
	for par in true false; do \
		$(GO) run -race ./cmd/lightpath-sim soak -seed 2024 -trials 2 -parallel=$$par -csv $$tmp >/dev/null && \
		diff -u cmd/lightpath-sim/testdata/soak_golden.csv $$tmp/soak.csv || rc=1; \
	done; rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "soak CSV diverged from golden (seed 2024)" >&2; exit 1; fi

## soak-resume-smoke: the crash-recovery gate — run the soak campaign
## with per-trial checkpoints, kill every trial at a mid-run event
## boundary, resume from the checkpoints, and diff the resumed CSV
## byte-for-byte against the same golden the uninterrupted soak-smoke
## uses. Both parallel modes, under the race detector: a resumed soak
## must be indistinguishable from one that never crashed.
soak-resume-smoke:
	@tmp=$$(mktemp -d); rc=0; \
	for par in true false; do \
		ck=$$tmp/ck-$$par; mkdir -p $$ck; \
		$(GO) run -race ./cmd/lightpath-sim soak -seed 2024 -trials 2 -parallel=$$par \
			-checkpoint $$ck -ckpt-interval 50 -kill-at 160 >/dev/null && \
		$(GO) run -race ./cmd/lightpath-sim soak -seed 2024 -trials 2 -parallel=$$par \
			-checkpoint $$ck -resume -csv $$tmp >/dev/null && \
		diff -u cmd/lightpath-sim/testdata/soak_golden.csv $$tmp/soak.csv || rc=1; \
	done; rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "resumed soak CSV diverged from golden (seed 2024)" >&2; exit 1; fi

## rail-smoke: run the acceptance-scale rail campaign (10,240
## endpoints, 1,310,720 flows through the component-sharded solver) —
## once parallel, once sequential, both under the race detector — and
## diff the CSVs against the committed golden. Any divergence means
## the sharded solve lost byte-for-byte parallel/sequential identity.
rail-smoke:
	@tmp=$$(mktemp -d); rc=0; \
	for par in true false; do \
		$(GO) run -race ./cmd/lightpath-sim rail -parallel=$$par -csv $$tmp >/dev/null && \
		diff -u cmd/lightpath-sim/testdata/rail_golden.csv $$tmp/rail.csv || rc=1; \
	done; rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "rail CSV diverged from golden" >&2; exit 1; fi

## controller-smoke: the daemon gate. First the lightpath-controller
## binary's selfcheck drill under the race detector: a real daemon on
## a loopback port driven through every rung of the robustness ladder
## (hostile frame, impossible deadlines, chip death -> breaker trips,
## overload shedding, checkpoint -> kill -> resume). Then the pinned-
## seed load campaign — 256k requests across 256 agents — in both
## -parallel modes, diffed byte-for-byte against the committed golden.
## Finally crash injection: kill every trial at a mid-run event
## boundary, resume from the checkpoints, and demand the resumed CSV
## be identical to the uninterrupted golden. (The full-scale race pass
## over this code runs in `make race` via the ctrl package tests; the
## campaign itself runs without -race to keep the gate under two
## minutes.)
controller-smoke:
	@tmp=$$(mktemp -d); rc=0; \
	$(GO) run -race ./cmd/lightpath-controller -selfcheck >/dev/null || rc=1; \
	for par in true false; do \
		$(GO) run ./cmd/lightpath-sim controller -seed 2024 -trials 2 -parallel=$$par -csv $$tmp >/dev/null && \
		diff -u cmd/lightpath-sim/testdata/controller_golden.csv $$tmp/controller.csv || rc=1; \
	done; \
	ck=$$tmp/ck; mkdir -p $$ck; \
	$(GO) run ./cmd/lightpath-sim controller -seed 2024 -trials 2 -checkpoint $$ck -kill-at 100000 >/dev/null && \
	$(GO) run ./cmd/lightpath-sim controller -seed 2024 -trials 2 -checkpoint $$ck -resume -csv $$tmp >/dev/null && \
	diff -u cmd/lightpath-sim/testdata/controller_golden.csv $$tmp/controller.csv || rc=1; \
	rm -rf $$tmp; \
	if [ $$rc -ne 0 ]; then echo "controller smoke diverged (seed 2024)" >&2; exit 1; fi

## bench: run every benchmark with allocation stats and write the
## structured report to BENCH.json (ns/op, allocs/op, and each
## benchmark's deterministic paper metric). The 100ms time budget
## keeps the second-scale campaign benchmarks at one iteration while
## the micro- and millisecond-scale ones average over many — a single
## cold iteration of a 6us benchmark is far too noisy to gate on.
## Paper metrics do not depend on iteration count.
BENCHTIME ?= 100ms
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./internal/... | $(GO) run ./cmd/lightpath-bench -o BENCH.json

## bench-smoke: the regression gate CI runs — a short benchmark pass
## whose paper metrics (never timings) must match the committed
## BENCH_baseline.json bit for bit.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./internal/... | $(GO) run ./cmd/lightpath-bench -baseline BENCH_baseline.json

## bench-compare: timing gate — ns/op, allocs/op, and custom "ns/..."
## timing metrics (e.g. the rail campaign's ns/flow) of a fresh pass
## against the committed baseline, within NS_TOL/ALLOCS_TOL
## multipliers. Now that BENCH_baseline.json is stable this step is
## blocking in CI: the generous NS_TOL absorbs machine noise, and the
## tight allocs tolerance catches allocation-count creep, which is
## deterministic.
NS_TOL ?= 1.50
ALLOCS_TOL ?= 1.10
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./internal/... | $(GO) run ./cmd/lightpath-bench -compare BENCH_baseline.json -ns-tol $(NS_TOL) -allocs-tol $(ALLOCS_TOL)

## check: everything CI runs, in the same order.
check: build lint race chaos-smoke soak-smoke soak-resume-smoke rail-smoke controller-smoke bench-smoke
